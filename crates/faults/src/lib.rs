//! Deterministic fault injection for the huge-page simulator.
//!
//! The paper's real-system evaluation (§5) runs PCC-driven promotion on
//! a live Linux box where promotions *fail*: compaction stalls, free
//! 2 MiB blocks run out, and per-core PCC SRAM is lost on context
//! switches (§3.2). This crate models those failure modes as a
//! declarative, JSON-loadable [`FaultPlan`]: a set of [`FaultWindow`]s,
//! each activating one [`FaultKind`] over a half-open interval range
//! `[at, at + duration)` measured in promotion intervals.
//!
//! A [`FaultInjector`] walks the plan as simulated time advances and
//! hands the simulation an [`IntervalEffects`] summary at every interval
//! boundary. Everything is a pure function of the plan — no wall clock,
//! no hidden RNG state — so a fixed-seed run under a fixed plan is
//! bit-identical across invocations.
//!
//! Fault kinds:
//!
//! - [`FaultKind::OomWindow`] — `alloc_huge` / `alloc_giant` fail for
//!   the window's duration (the OS keeps satisfying base-page faults).
//! - [`FaultKind::CompactionStall`] — compaction is unavailable; only
//!   already-clean 2 MiB blocks can back promotions.
//! - [`FaultKind::FragmentationShock`] — `PhysicalMemory::fragment` is
//!   re-applied mid-run with the window's own percent/seed (paper
//!   §5.1.1 methodology, applied as a shock instead of at boot).
//! - [`FaultKind::PccReset`] — all PCC banks are cleared each interval
//!   in the window, modeling SRAM loss on context switch (§3.2).
//! - [`FaultKind::ShootdownSpike`] — shootdowns during the window flush
//!   entire TLB hierarchies instead of single regions, modeling the
//!   latency/overshoot of IPI storms.
//!
//! Two further kinds target the *experiment harness* rather than the
//! simulated OS, so the chaos suite can drive the supervised runner
//! itself (panic isolation, retries, deadlines):
//!
//! - [`FaultKind::CellPanic`] — the covered harness cells panic on their
//!   first `failures` attempts.
//! - [`FaultKind::CellStall`] — the covered harness cells sleep `millis`
//!   wall-clock milliseconds per attempt before running.
//!
//! For these two, a window's `at`/`for` range is measured in **cell
//! submission indices**, not promotion intervals; the simulation-level
//! [`FaultInjector`] ignores them entirely (see
//! [`FaultKind::is_harness_level`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use hpage_types::HpageError;
use json::Value;

/// One category of injected fault. See the crate docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Huge and giant allocations fail outright.
    OomWindow,
    /// Compaction is unavailable; only clean blocks back promotions.
    CompactionStall,
    /// Physical memory is re-fragmented mid-run (fires once, at the
    /// window's first interval).
    FragmentationShock {
        /// Percentage of blocks to pin with unmovable pages (0–100).
        percent: u8,
        /// Seed for the deterministic fragmentation shuffle.
        seed: u64,
    },
    /// Per-core PCC contents are lost (cleared every interval in the
    /// window).
    PccReset,
    /// Shootdowns flush whole TLB hierarchies instead of one region.
    ShootdownSpike,
    /// Harness-level: the covered cells panic on their first `failures`
    /// attempts (the window range is cell submission indices).
    CellPanic {
        /// How many leading attempts panic before the cell succeeds
        /// (≥ 1; with a retry budget below this, the cell fails).
        failures: u32,
    },
    /// Harness-level: the covered cells sleep this long per attempt
    /// before running (the window range is cell submission indices).
    CellStall {
        /// Wall-clock milliseconds to stall each attempt.
        millis: u64,
    },
}

impl FaultKind {
    /// Short stable identifier used in JSON plans and event streams.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::OomWindow => "oom",
            FaultKind::CompactionStall => "compaction_stall",
            FaultKind::FragmentationShock { .. } => "fragmentation_shock",
            FaultKind::PccReset => "pcc_reset",
            FaultKind::ShootdownSpike => "shootdown_spike",
            FaultKind::CellPanic { .. } => "cell_panic",
            FaultKind::CellStall { .. } => "cell_stall",
        }
    }

    /// Whether this kind targets the experiment harness (cell panics and
    /// stalls) rather than the simulated OS. Harness-level windows use
    /// cell submission indices for `at`/`for` and are inert inside the
    /// simulation's [`FaultInjector`].
    pub fn is_harness_level(&self) -> bool {
        matches!(
            self,
            FaultKind::CellPanic { .. } | FaultKind::CellStall { .. }
        )
    }
}

/// One fault active over the half-open interval range
/// `[at, at + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// The fault to inject.
    pub kind: FaultKind,
    /// First promotion interval (0-based) at which the fault is active.
    pub at: u64,
    /// Number of consecutive intervals the fault stays active (≥ 1).
    pub duration: u64,
}

impl FaultWindow {
    /// Whether this window covers `interval`.
    pub fn covers(&self, interval: u64) -> bool {
        interval >= self.at && interval - self.at < self.duration
    }
}

/// A named, declarative schedule of fault windows.
///
/// Windows may overlap freely (an OOM window inside a compaction stall
/// is a legitimate scenario). [`FaultPlan::validate`] enforces only
/// per-window sanity: non-zero durations, percentages ≤ 100, and no
/// overflowing ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Human-readable plan name (carried into reports and events).
    pub name: String,
    /// The fault windows, in plan order.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// Creates a validated plan.
    pub fn new(name: impl Into<String>, windows: Vec<FaultWindow>) -> Result<Self, HpageError> {
        let plan = FaultPlan {
            name: name.into(),
            windows,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Checks per-window sanity. Returns the first problem found.
    pub fn validate(&self) -> Result<(), HpageError> {
        for (i, w) in self.windows.iter().enumerate() {
            if w.duration == 0 {
                return Err(fault_err(format!(
                    "plan {:?}: window {i} ({}) has zero duration",
                    self.name,
                    w.kind.label()
                )));
            }
            if w.at.checked_add(w.duration).is_none() {
                return Err(fault_err(format!(
                    "plan {:?}: window {i} ({}) overflows the interval range",
                    self.name,
                    w.kind.label()
                )));
            }
            if let FaultKind::FragmentationShock { percent, .. } = w.kind {
                if percent > 100 {
                    return Err(fault_err(format!(
                        "plan {:?}: window {i} fragmentation percent {percent} > 100",
                        self.name
                    )));
                }
            }
            if let FaultKind::CellPanic { failures } = w.kind {
                if failures == 0 {
                    return Err(fault_err(format!(
                        "plan {:?}: window {i} cell_panic with zero failures injects nothing",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// The harness-level windows (cell panics and stalls), whose
    /// `at`/`for` ranges are cell submission indices. The supervised
    /// runner consumes these; [`FaultInjector`] skips them.
    pub fn cell_windows(&self) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(|w| w.kind.is_harness_level())
    }

    /// The last interval (exclusive) touched by any window, i.e. the
    /// plan is fully spent once this many intervals have elapsed.
    pub fn horizon(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| w.at.saturating_add(w.duration))
            .max()
            .unwrap_or(0)
    }

    /// Parses a plan from its JSON form. The format:
    ///
    /// ```json
    /// {
    ///   "name": "chaos",
    ///   "faults": [
    ///     {"kind": "oom", "at": 2, "for": 3},
    ///     {"kind": "compaction_stall", "at": 1, "for": 4},
    ///     {"kind": "fragmentation_shock", "at": 4, "for": 1,
    ///      "percent": 60, "seed": 9},
    ///     {"kind": "pcc_reset", "at": 5, "for": 2},
    ///     {"kind": "shootdown_spike", "at": 3, "for": 1},
    ///     {"kind": "cell_panic", "at": 3, "for": 1, "failures": 1},
    ///     {"kind": "cell_stall", "at": 0, "for": 2, "millis": 10}
    ///   ]
    /// }
    /// ```
    ///
    /// `"for"` defaults to 1 when omitted (as does `"failures"` for
    /// `cell_panic`). Unknown keys are rejected so typos fail loudly
    /// instead of silently injecting nothing.
    pub fn from_json(text: &str) -> Result<Self, HpageError> {
        let root = json::parse(text).map_err(|e| fault_err(format!("fault plan JSON: {e}")))?;
        let obj = root
            .as_object()
            .ok_or_else(|| fault_err("fault plan JSON: top level must be an object"))?;
        for key in obj.keys() {
            if key != "name" && key != "faults" {
                return Err(fault_err(format!("fault plan JSON: unknown key {key:?}")));
            }
        }
        let name = match obj.get("name") {
            None => String::from("unnamed"),
            Some(v) => v
                .as_str()
                .ok_or_else(|| fault_err("fault plan JSON: \"name\" must be a string"))?
                .to_string(),
        };
        let faults = obj
            .get("faults")
            .ok_or_else(|| fault_err("fault plan JSON: missing \"faults\" array"))?
            .as_array()
            .ok_or_else(|| fault_err("fault plan JSON: \"faults\" must be an array"))?;
        let mut windows = Vec::with_capacity(faults.len());
        for (i, f) in faults.iter().enumerate() {
            windows.push(Self::window_from_json(i, f)?);
        }
        FaultPlan::new(name, windows)
    }

    fn window_from_json(i: usize, v: &Value) -> Result<FaultWindow, HpageError> {
        let obj = v
            .as_object()
            .ok_or_else(|| fault_err(format!("fault {i}: must be an object")))?;
        let get_uint = |key: &str| -> Result<Option<u64>, HpageError> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => v.as_uint().map(Some).ok_or_else(|| {
                    fault_err(format!("fault {i}: {key:?} must be an unsigned integer"))
                }),
            }
        };
        let kind_name = obj
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| fault_err(format!("fault {i}: missing string \"kind\"")))?;
        let mut allowed: &[&str] = &["kind", "at", "for"];
        let kind = match kind_name {
            "oom" => FaultKind::OomWindow,
            "compaction_stall" => FaultKind::CompactionStall,
            "pcc_reset" => FaultKind::PccReset,
            "shootdown_spike" => FaultKind::ShootdownSpike,
            "fragmentation_shock" => {
                allowed = &["kind", "at", "for", "percent", "seed"];
                let percent = get_uint("percent")?.ok_or_else(|| {
                    fault_err(format!("fault {i}: fragmentation_shock needs \"percent\""))
                })?;
                if percent > 100 {
                    return Err(fault_err(format!("fault {i}: percent {percent} > 100")));
                }
                FaultKind::FragmentationShock {
                    percent: percent as u8,
                    seed: get_uint("seed")?.unwrap_or(0),
                }
            }
            "cell_panic" => {
                allowed = &["kind", "at", "for", "failures"];
                let failures = get_uint("failures")?.unwrap_or(1);
                if failures == 0 || failures > u64::from(u32::MAX) {
                    return Err(fault_err(format!(
                        "fault {i}: cell_panic \"failures\" must be in 1..=2^32-1"
                    )));
                }
                FaultKind::CellPanic {
                    failures: failures as u32,
                }
            }
            "cell_stall" => {
                allowed = &["kind", "at", "for", "millis"];
                let millis = get_uint("millis")?
                    .ok_or_else(|| fault_err(format!("fault {i}: cell_stall needs \"millis\"")))?;
                FaultKind::CellStall { millis }
            }
            other => {
                return Err(fault_err(format!("fault {i}: unknown kind {other:?}")));
            }
        };
        for key in obj.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(fault_err(format!("fault {i}: unknown key {key:?}")));
            }
        }
        let at = get_uint("at")?
            .ok_or_else(|| fault_err(format!("fault {i}: missing \"at\" interval")))?;
        let duration = get_uint("for")?.unwrap_or(1);
        Ok(FaultWindow { kind, at, duration })
    }

    /// Renders the plan back to its canonical JSON form (round-trips
    /// through [`FaultPlan::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"faults\": [",
            esc(&self.name)
        ));
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"kind\": \"{}\", \"at\": {}, \"for\": {}",
                w.kind.label(),
                w.at,
                w.duration
            ));
            match w.kind {
                FaultKind::FragmentationShock { percent, seed } => {
                    out.push_str(&format!(", \"percent\": {percent}, \"seed\": {seed}"));
                }
                FaultKind::CellPanic { failures } => {
                    out.push_str(&format!(", \"failures\": {failures}"));
                }
                FaultKind::CellStall { millis } => {
                    out.push_str(&format!(", \"millis\": {millis}"));
                }
                _ => {}
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn fault_err(reason: impl Into<String>) -> HpageError {
    HpageError::Fault {
        reason: reason.into(),
    }
}

// Plan names come from user JSON; keep them from breaking the emitted
// document. Mirrors hpage-obs::json::esc (obs is not a dependency here
// to keep faults at the bottom of the graph next to types).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The faults in force for one promotion interval, as computed by
/// [`FaultInjector::effects_at`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalEffects {
    /// Huge/giant allocations must fail this interval.
    pub oom: bool,
    /// Compaction must be treated as unavailable this interval.
    pub compaction_stall: bool,
    /// Fragmentation shocks firing *this* interval (window starts
    /// only — a shock is a one-time event, not a sustained state), as
    /// `(percent, seed)` pairs in plan order.
    pub shocks: Vec<(u8, u64)>,
    /// All PCC banks must be cleared this interval.
    pub pcc_reset: bool,
    /// Shootdowns this interval flush whole TLBs, not single regions.
    pub shootdown_spike: bool,
    /// Fault kinds newly entering force this interval (for event
    /// emission), in plan order, deduplicated by label.
    pub started: Vec<FaultKind>,
}

impl IntervalEffects {
    /// Whether any fault is in force this interval.
    pub fn any(&self) -> bool {
        self.oom
            || self.compaction_stall
            || self.pcc_reset
            || self.shootdown_spike
            || !self.shocks.is_empty()
    }
}

/// Running totals of what the injector has actually inflicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Intervals during which at least one fault was in force.
    pub faulted_intervals: u64,
    /// Intervals spent inside an OOM window.
    pub oom_intervals: u64,
    /// Intervals spent with compaction stalled.
    pub compaction_stall_intervals: u64,
    /// Fragmentation shocks fired.
    pub shocks_fired: u64,
    /// PCC reset events applied.
    pub pcc_resets: u64,
    /// Intervals with shootdown spikes in force.
    pub shootdown_spike_intervals: u64,
}

/// Walks a [`FaultPlan`] as simulated time advances.
///
/// The injector is a pure function of `(plan, interval)` plus running
/// stats; it holds no RNG. Determinism therefore reduces to the plan
/// itself (fragmentation shocks carry their own seeds).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    stats: FaultStats,
    last_interval: Option<u64>,
}

impl FaultInjector {
    /// Creates an injector for a validated plan.
    pub fn new(plan: FaultPlan) -> Result<Self, HpageError> {
        plan.validate()?;
        Ok(FaultInjector {
            plan,
            stats: FaultStats::default(),
            last_interval: None,
        })
    }

    /// The plan this injector is executing.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Totals of faults inflicted so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Computes the faults in force for `interval` and updates stats.
    ///
    /// Intervals must be queried in strictly increasing order; a shock
    /// whose window starts at a skipped interval still fires on the
    /// first query at or past its start (so coarse interval schedules
    /// can't silently drop one-shot faults).
    pub fn effects_at(&mut self, interval: u64) -> IntervalEffects {
        let prev = self.last_interval;
        if let Some(p) = prev {
            debug_assert!(
                interval > p,
                "effects_at must be called with increasing intervals"
            );
        }
        self.last_interval = Some(interval);

        let mut fx = IntervalEffects::default();
        let newly_started = |w: &FaultWindow| match prev {
            // First query: anything already in force counts as starting.
            None => w.covers(interval),
            Some(p) => w.covers(interval) && !w.covers(p),
        };
        for w in &self.plan.windows {
            // Harness-level kinds target cell submission indices, not
            // sim intervals; the supervised runner consumes them and
            // the injector treats them as inert.
            if w.kind.is_harness_level() {
                continue;
            }
            let active = w.covers(interval);
            let started = newly_started(w);
            // One-shot shocks fire when their window is first reached,
            // even if the exact start interval was skipped over.
            let shock_due = match w.kind {
                FaultKind::FragmentationShock { .. } => match prev {
                    None => w.at <= interval && w.covers(interval),
                    Some(p) => w.at > p && w.at <= interval,
                },
                _ => false,
            };
            if !active && !shock_due {
                continue;
            }
            match w.kind {
                FaultKind::OomWindow => fx.oom = true,
                FaultKind::CompactionStall => fx.compaction_stall = true,
                FaultKind::PccReset => fx.pcc_reset = true,
                FaultKind::ShootdownSpike => fx.shootdown_spike = true,
                FaultKind::FragmentationShock { percent, seed } => {
                    if shock_due {
                        fx.shocks.push((percent, seed));
                    }
                }
                // Skipped above; unreachable here.
                FaultKind::CellPanic { .. } | FaultKind::CellStall { .. } => {}
            }
            if started || (shock_due && !active) {
                let label = w.kind.label();
                if !fx.started.iter().any(|k| k.label() == label) {
                    fx.started.push(w.kind);
                }
            }
        }

        if fx.any() {
            self.stats.faulted_intervals += 1;
        }
        if fx.oom {
            self.stats.oom_intervals += 1;
        }
        if fx.compaction_stall {
            self.stats.compaction_stall_intervals += 1;
        }
        if fx.pcc_reset {
            self.stats.pcc_resets += 1;
        }
        if fx.shootdown_spike {
            self.stats.shootdown_spike_intervals += 1;
        }
        self.stats.shocks_fired += fx.shocks.len() as u64;
        fx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(windows: Vec<FaultWindow>) -> FaultPlan {
        FaultPlan::new("test", windows).unwrap()
    }

    fn w(kind: FaultKind, at: u64, duration: u64) -> FaultWindow {
        FaultWindow { kind, at, duration }
    }

    #[test]
    fn window_covers_half_open_range() {
        let win = w(FaultKind::OomWindow, 2, 3);
        assert!(!win.covers(1));
        assert!(win.covers(2));
        assert!(win.covers(4));
        assert!(!win.covers(5));
    }

    #[test]
    fn validate_rejects_bad_windows() {
        assert!(FaultPlan::new("p", vec![w(FaultKind::OomWindow, 0, 0)]).is_err());
        assert!(FaultPlan::new("p", vec![w(FaultKind::OomWindow, u64::MAX, 2)]).is_err());
        assert!(FaultPlan::new(
            "p",
            vec![w(
                FaultKind::FragmentationShock {
                    percent: 101,
                    seed: 0
                },
                0,
                1
            )]
        )
        .is_err());
    }

    #[test]
    fn horizon_spans_all_windows() {
        let p = plan(vec![
            w(FaultKind::OomWindow, 2, 3),
            w(FaultKind::PccReset, 7, 1),
        ]);
        assert_eq!(p.horizon(), 8);
        assert_eq!(FaultPlan::default().horizon(), 0);
    }

    #[test]
    fn effects_track_windows() {
        let mut inj = FaultInjector::new(plan(vec![
            w(FaultKind::OomWindow, 1, 2),
            w(FaultKind::CompactionStall, 2, 2),
        ]))
        .unwrap();
        let fx0 = inj.effects_at(0);
        assert!(!fx0.any());
        assert!(fx0.started.is_empty());
        let fx1 = inj.effects_at(1);
        assert!(fx1.oom && !fx1.compaction_stall);
        assert_eq!(fx1.started, vec![FaultKind::OomWindow]);
        let fx2 = inj.effects_at(2);
        assert!(fx2.oom && fx2.compaction_stall);
        assert_eq!(fx2.started, vec![FaultKind::CompactionStall]);
        let fx3 = inj.effects_at(3);
        assert!(!fx3.oom && fx3.compaction_stall);
        assert!(fx3.started.is_empty());
        assert!(!inj.effects_at(4).any());
        assert_eq!(inj.stats().oom_intervals, 2);
        assert_eq!(inj.stats().compaction_stall_intervals, 2);
        assert_eq!(inj.stats().faulted_intervals, 3);
    }

    #[test]
    fn shock_fires_once_even_if_interval_skipped() {
        let shock = FaultKind::FragmentationShock {
            percent: 40,
            seed: 7,
        };
        let mut inj = FaultInjector::new(plan(vec![w(shock, 3, 1)])).unwrap();
        assert!(inj.effects_at(1).shocks.is_empty());
        // Interval 3 (the window start) is skipped; the shock still
        // fires at the first query past it.
        let fx = inj.effects_at(5);
        assert_eq!(fx.shocks, vec![(40, 7)]);
        assert_eq!(fx.started, vec![shock]);
        assert!(inj.effects_at(6).shocks.is_empty());
        assert_eq!(inj.stats().shocks_fired, 1);
    }

    #[test]
    fn shock_does_not_repeat_within_window() {
        let shock = FaultKind::FragmentationShock {
            percent: 25,
            seed: 1,
        };
        let mut inj = FaultInjector::new(plan(vec![w(shock, 0, 4)])).unwrap();
        assert_eq!(inj.effects_at(0).shocks.len(), 1);
        assert!(inj.effects_at(1).shocks.is_empty());
        assert!(inj.effects_at(2).shocks.is_empty());
        assert_eq!(inj.stats().shocks_fired, 1);
    }

    #[test]
    fn pcc_reset_repeats_every_interval_in_window() {
        let mut inj = FaultInjector::new(plan(vec![w(FaultKind::PccReset, 1, 3)])).unwrap();
        assert!(!inj.effects_at(0).pcc_reset);
        assert!(inj.effects_at(1).pcc_reset);
        assert!(inj.effects_at(2).pcc_reset);
        assert!(inj.effects_at(3).pcc_reset);
        assert!(!inj.effects_at(4).pcc_reset);
        assert_eq!(inj.stats().pcc_resets, 3);
    }

    #[test]
    fn injector_is_deterministic() {
        let p = plan(vec![
            w(FaultKind::OomWindow, 0, 2),
            w(
                FaultKind::FragmentationShock {
                    percent: 60,
                    seed: 9,
                },
                1,
                1,
            ),
            w(FaultKind::ShootdownSpike, 2, 2),
        ]);
        let run = |p: &FaultPlan| {
            let mut inj = FaultInjector::new(p.clone()).unwrap();
            (0..6).map(|i| inj.effects_at(i)).collect::<Vec<_>>()
        };
        assert_eq!(run(&p), run(&p));
    }

    #[test]
    fn json_round_trip() {
        let text = r#"{
            "name": "chaos",
            "faults": [
                {"kind": "oom", "at": 2, "for": 3},
                {"kind": "compaction_stall", "at": 1},
                {"kind": "fragmentation_shock", "at": 4, "percent": 60, "seed": 9},
                {"kind": "pcc_reset", "at": 5, "for": 2},
                {"kind": "shootdown_spike", "at": 3, "for": 1}
            ]
        }"#;
        let p = FaultPlan::from_json(text).unwrap();
        assert_eq!(p.name, "chaos");
        assert_eq!(p.windows.len(), 5);
        assert_eq!(p.windows[0], w(FaultKind::OomWindow, 2, 3));
        assert_eq!(p.windows[1], w(FaultKind::CompactionStall, 1, 1));
        assert_eq!(
            p.windows[2],
            w(
                FaultKind::FragmentationShock {
                    percent: 60,
                    seed: 9
                },
                4,
                1
            )
        );
        let reparsed = FaultPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn json_rejects_malformed_plans() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"faults": 3}"#,
            r#"{"name": 1, "faults": []}"#,
            r#"{"faults": [{"kind": "warp_core_breach", "at": 0}]}"#,
            r#"{"faults": [{"kind": "oom"}]}"#,
            r#"{"faults": [{"kind": "oom", "at": 0, "for": 0}]}"#,
            r#"{"faults": [{"kind": "oom", "at": 0, "typo": 1}]}"#,
            r#"{"faults": [{"kind": "oom", "at": 0, "percent": 10}]}"#,
            r#"{"faults": [{"kind": "fragmentation_shock", "at": 0}]}"#,
            r#"{"faults": [{"kind": "fragmentation_shock", "at": 0, "percent": 101}]}"#,
            r#"{"faults": [], "extra": true}"#,
        ] {
            assert!(FaultPlan::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn json_defaults() {
        let p = FaultPlan::from_json(r#"{"faults": [{"kind": "oom", "at": 7}]}"#).unwrap();
        assert_eq!(p.name, "unnamed");
        assert_eq!(p.windows, vec![w(FaultKind::OomWindow, 7, 1)]);
    }

    #[test]
    fn plan_name_is_escaped_in_json() {
        let p = FaultPlan::new("a\"b", vec![]).unwrap();
        let text = p.to_json();
        assert!(text.contains("a\\\"b"));
        assert_eq!(FaultPlan::from_json(&text).unwrap().name, "a\"b");
    }

    #[test]
    fn harness_kinds_round_trip_through_json() {
        let text = r#"{
            "name": "cells",
            "faults": [
                {"kind": "cell_panic", "at": 3, "for": 2, "failures": 4},
                {"kind": "cell_panic", "at": 0},
                {"kind": "cell_stall", "at": 1, "for": 3, "millis": 25}
            ]
        }"#;
        let p = FaultPlan::from_json(text).unwrap();
        assert_eq!(p.windows.len(), 3);
        assert_eq!(p.windows[0], w(FaultKind::CellPanic { failures: 4 }, 3, 2));
        // "failures" defaults to 1 like "for".
        assert_eq!(p.windows[1], w(FaultKind::CellPanic { failures: 1 }, 0, 1));
        assert_eq!(p.windows[2], w(FaultKind::CellStall { millis: 25 }, 1, 3));
        let reparsed = FaultPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn harness_kinds_reject_malformed_windows() {
        for bad in [
            r#"{"faults": [{"kind": "cell_panic", "at": 0, "failures": 0}]}"#,
            r#"{"faults": [{"kind": "cell_panic", "at": 0, "millis": 5}]}"#,
            r#"{"faults": [{"kind": "cell_stall", "at": 0}]}"#,
            r#"{"faults": [{"kind": "cell_stall", "at": 0, "failures": 1}]}"#,
        ] {
            assert!(FaultPlan::from_json(bad).is_err(), "accepted: {bad}");
        }
        assert!(
            FaultPlan::new("p", vec![w(FaultKind::CellPanic { failures: 0 }, 0, 1)]).is_err(),
            "zero-failure cell_panic must fail validation"
        );
    }

    #[test]
    fn harness_kinds_are_inert_in_the_injector() {
        let p = plan(vec![
            w(FaultKind::CellPanic { failures: 2 }, 0, 4),
            w(FaultKind::CellStall { millis: 10 }, 1, 4),
        ]);
        let mut inj = FaultInjector::new(p.clone()).unwrap();
        for interval in 0..6 {
            let fx = inj.effects_at(interval);
            assert!(
                !fx.any(),
                "harness kinds must not affect interval {interval}"
            );
            assert!(fx.started.is_empty());
        }
        assert_eq!(inj.stats().faulted_intervals, 0);
        // But the supervised runner can still see them.
        assert_eq!(p.cell_windows().count(), 2);
    }
}
