//! Span tracing: hierarchical operation records emitted as
//! chrome-trace-viewer JSON (`chrome://tracing` / Perfetto "complete"
//! events).
//!
//! Spans are cheap, append-only records — no RAII guards, no wall
//! clock. Timestamps are simulation time (total accesses issued), so a
//! trace of a fixed-seed run is byte-stable. Parent/child causality is
//! explicit: the recorder links a PCC update to the page walk that fed
//! it and a shootdown/compaction to the promotion that caused it.

use hpage_obs::json::esc;

/// Pseudo-pid for hardware-side spans (walks, PCC updates); the tid is
/// the core id.
pub const PID_HW: u32 = 0;
/// Pseudo-pid for OS-side spans (promotions, shootdowns, compactions,
/// intervals).
pub const PID_OS: u32 = 1;

/// One completed span ("X" phase in the chrome trace format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span id, unique within a book (also the chrome-trace `id` arg).
    pub id: u64,
    /// Parent span id, if this operation was caused by another.
    pub parent: Option<u64>,
    /// Operation name (e.g. `"walk"`, `"promote"`).
    pub name: &'static str,
    /// Trace category (`"hw"` or `"os"`).
    pub cat: &'static str,
    /// Pseudo-process: [`PID_HW`] or [`PID_OS`].
    pub pid: u32,
    /// Thread lane: core id for hardware spans, 0 for OS spans.
    pub tid: u32,
    /// Start timestamp in simulation accesses.
    pub ts: u64,
    /// Duration. Hardware spans use model cycles; OS spans use proxy
    /// units (pages migrated, TLB entries flushed) since OS work is
    /// instantaneous at an interval boundary in the model.
    pub dur: u64,
    /// Extra key/value args rendered into the trace event.
    pub args: Vec<(&'static str, u64)>,
}

/// An append-only collection of spans with an optional capacity cap.
///
/// Hot-path spans (every page walk emits one) would grow without bound
/// on long runs, so the book can be capped: once full, new spans are
/// counted in [`dropped`](SpanBook::dropped) and discarded. The *newest*
/// spans are dropped (unlike the event ring) because parent links point
/// backwards — keeping the oldest spans keeps the links resolvable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanBook {
    spans: Vec<Span>,
    capacity: Option<usize>,
    dropped: u64,
    next_id: u64,
}

impl SpanBook {
    /// An unbounded book.
    pub fn new() -> Self {
        Self::default()
    }

    /// A book holding at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanBook {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Appends a span, returning its id. The id is returned even when
    /// the span itself is dropped for capacity, so callers can keep
    /// linking children without checking (dangling parents render as
    /// plain args and chrome-trace viewers ignore them).
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        name: &'static str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts: u64,
        dur: u64,
        parent: Option<u64>,
        args: Vec<(&'static str, u64)>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if self.capacity.is_some_and(|cap| self.spans.len() >= cap) {
            self.dropped += 1;
        } else {
            self.spans.push(Span {
                id,
                parent,
                name,
                cat,
                pid,
                tid,
                ts,
                dur,
                args,
            });
        }
        id
    }

    /// Retained spans, in append order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans discarded because the book was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span was retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the book as chrome-trace-viewer JSON: a single object
    /// with a `traceEvents` array of "X" (complete) events. Load it at
    /// `chrome://tracing` or <https://ui.perfetto.dev>. `ts`/`dur` are
    /// simulation accesses, not microseconds — relative placement is
    /// what matters.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        // Lane metadata so viewers label the two pseudo-processes.
        for (pid, label) in [(PID_HW, "hardware"), (PID_OS, "os")] {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        for s in &self.spans {
            out.push(',');
            let mut args = format!("\"id\":{}", s.id);
            if let Some(p) = s.parent {
                args.push_str(&format!(",\"parent\":{p}"));
            }
            for (k, v) in &s.args {
                args.push_str(&format!(",\"{}\":{}", esc(k), v));
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
                esc(s.name),
                esc(s.cat),
                s.pid,
                s.tid,
                s.ts,
                s.dur,
                args
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_obs::json::assert_json_shape;

    #[test]
    fn push_links_and_renders() {
        let mut book = SpanBook::new();
        let walk = book.push("walk", "hw", PID_HW, 2, 100, 4, None, vec![("levels", 4)]);
        let pcc = book.push("pcc_update", "hw", PID_HW, 2, 100, 1, Some(walk), vec![]);
        assert_eq!(book.len(), 2);
        assert_eq!(book.spans()[1].parent, Some(walk));
        assert!(pcc > walk);
        let json = book.chrome_trace_json();
        assert_json_shape(&json);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"levels\":4"));
        assert!(json.contains("\"name\":\"hardware\""));
    }

    #[test]
    fn capped_book_drops_newest_and_counts() {
        let mut book = SpanBook::with_capacity(2);
        for i in 0..5 {
            book.push("walk", "hw", PID_HW, 0, i, 1, None, vec![]);
        }
        assert_eq!(book.len(), 2);
        assert_eq!(book.dropped(), 3);
        // Ids keep advancing even for dropped spans.
        let id = book.push("walk", "hw", PID_HW, 0, 9, 1, None, vec![]);
        assert_eq!(id, 5);
        // Retained spans are the oldest (parents of everything later).
        assert_eq!(book.spans()[0].ts, 0);
        assert_eq!(book.spans()[1].ts, 1);
    }

    #[test]
    fn trace_json_is_deterministic() {
        let build = || {
            let mut b = SpanBook::new();
            let p = b.push("promote", "os", PID_OS, 0, 500, 1, None, vec![("rank", 0)]);
            b.push("shootdown", "os", PID_OS, 0, 500, 12, Some(p), vec![]);
            b.chrome_trace_json()
        };
        assert_eq!(build(), build());
    }
}
