//! Telemetry: metrics, span tracing, and ledger reporting on top of
//! the flight recorder.
//!
//! `hpage-obs` gives the simulator a typed event stream; this crate
//! gives that stream *meaning*:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and log-linear
//!   [`Histogram`]s (walk latency, shootdown size, promotion
//!   latency-to-benefit, PCC occupancy), deterministic to render and
//!   cheap to merge across the harness's worker threads;
//! * [`SpanBook`] — parent/child spans of OS operations (page walk →
//!   PCC update, promotion → shootdown → compaction), emitted as
//!   chrome-trace-viewer JSON for `chrome://tracing` / Perfetto;
//! * [`TelemetryRecorder`] — the [`Recorder`](hpage_obs::Recorder)
//!   implementation that builds both from the event stream in one
//!   pass, plus a per-interval text summary, and folds in the
//!   promotion ledger's predicted-vs-realized accounting.
//!
//! The hot loop stays free: the simulator is generic over the recorder,
//! so `NullRecorder` builds compile all instrumentation away; this
//! crate is only on the code path when telemetry was asked for.
//! Everything here is keyed by simulation time and static names — no
//! wall clock, no randomness — so all rendered output is byte-stable
//! for a fixed seed, at any `--jobs` level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod recorder;
mod span;

pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{TelemetryRecorder, DEFAULT_SPAN_CAPACITY};
pub use span::{Span, SpanBook, PID_HW, PID_OS};
