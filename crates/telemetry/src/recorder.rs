//! [`TelemetryRecorder`]: the aggregating [`Recorder`] that turns the
//! flight-recorder event stream into metrics, causally-linked spans,
//! and a per-interval text summary — in one pass, with no intermediate
//! event buffer.

use hpage_obs::{Event, FailureReason, PccAction, Recorder, TlbLevel};
use hpage_os::PromotionLedger;
use hpage_types::{FxHashMap, PageSize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::MetricsRegistry;
use crate::span::{SpanBook, PID_HW, PID_OS};

/// Counter values captured at the last interval boundary, for
/// per-interval deltas in the text summary.
#[derive(Debug, Clone, Copy, Default)]
struct SummaryMark {
    walks: u64,
    hits: u64,
    promotions: u64,
    demotions: u64,
    shootdowns: u64,
    faults: u64,
}

/// Aggregates the event stream into a [`MetricsRegistry`] and a
/// [`SpanBook`] as the simulation runs.
///
/// Causality links (parent/child spans):
///
/// * a `pcc_update` span is a child of the page `walk` span that fed it
///   (same core, same timestamp);
/// * `compact` and `shootdown` spans are children of the `promote`
///   span that caused them (same region, same interval boundary);
/// * the region→promotion map is cleared at each `interval` span, so
///   links never cross a boundary.
///
/// The span book is capped by default (hot runs emit one span per page
/// walk); dropped spans are counted and surfaced as the
/// `telemetry.spans_dropped` gauge in [`metrics_snapshot`]
/// (Self::metrics_snapshot).
#[derive(Debug, Clone)]
pub struct TelemetryRecorder {
    metrics: MetricsRegistry,
    spans: SpanBook,
    /// Model cycles per page-table level actually referenced, used to
    /// scale walk spans and the `walk_cycles` histogram. The default 30
    /// matches `TimingConfig` (120-cycle full 4-level walk).
    cycles_per_level: u64,
    /// Per-core id+timestamp of the most recent walk span, for linking
    /// the PCC update the same access produces.
    last_walk_span: FxHashMap<u32, (u64, u64)>,
    /// Promotion span ids by `(process, region index)`, this boundary.
    promote_spans: FxHashMap<(u32, u64), u64>,
    /// Timestamp of the previous interval boundary.
    last_boundary_at: u64,
    mark: SummaryMark,
    summary_rows: Vec<String>,
    /// Shared I/O-error counter of the JSONL sink this recorder rides
    /// alongside (see `JsonlSink::with_error_counter`), mirrored into
    /// the snapshot as the `sink.io_errors` gauge.
    sink_errors: Option<Arc<AtomicU64>>,
}

/// Default span-book capacity: enough for every OS-side span of any
/// realistic run plus a long prefix of hot-path walk spans.
pub const DEFAULT_SPAN_CAPACITY: usize = 200_000;

impl Default for TelemetryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRecorder {
    /// A recorder with the default span capacity.
    pub fn new() -> Self {
        TelemetryRecorder {
            metrics: MetricsRegistry::new(),
            spans: SpanBook::with_capacity(DEFAULT_SPAN_CAPACITY),
            cycles_per_level: 30,
            last_walk_span: FxHashMap::default(),
            promote_spans: FxHashMap::default(),
            last_boundary_at: 0,
            mark: SummaryMark::default(),
            summary_rows: Vec::new(),
            sink_errors: None,
        }
    }

    /// Attaches the shared I/O-error counter of a companion `JsonlSink`
    /// so sink failures surface in [`metrics_snapshot`]
    /// (Self::metrics_snapshot) as the `sink.io_errors` gauge.
    #[must_use]
    pub fn with_sink_error_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.sink_errors = Some(counter);
        self
    }

    /// Overrides the span-book capacity (0 disables span collection
    /// entirely — metrics only).
    #[must_use]
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.spans = SpanBook::with_capacity(capacity);
        self
    }

    /// Overrides the cycles-per-level scale for walk spans and the
    /// `walk_cycles` histogram.
    #[must_use]
    pub fn with_cycles_per_level(mut self, cycles: u64) -> Self {
        self.cycles_per_level = cycles;
        self
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The live span book.
    pub fn spans(&self) -> &SpanBook {
        &self.spans
    }

    /// A snapshot of the registry with telemetry self-accounting
    /// (dropped-span gauge) folded in. Use this, not [`metrics`]
    /// (Self::metrics), when rendering final output.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut m = self.metrics.clone();
        m.set_gauge("telemetry.spans_dropped", self.spans.dropped());
        if let Some(errors) = &self.sink_errors {
            m.set_gauge("sink.io_errors", errors.load(Ordering::Relaxed));
        }
        m
    }

    /// Renders the collected spans as chrome-trace-viewer JSON.
    pub fn chrome_trace_json(&self) -> String {
        self.spans.chrome_trace_json()
    }

    /// The per-interval text summary: one row per completed interval
    /// with event-count deltas for that interval.
    pub fn interval_summary(&self) -> String {
        let mut out = String::from(
            "interval  accesses  walks  tlb_hits  faults  promotes  demotes  shootdowns\n",
        );
        for row in &self.summary_rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// Folds an event-buffer drop count (e.g. from a capped
    /// `MemoryRecorder` ring) into the registry, so lossy recordings
    /// are visible in the metrics output.
    pub fn note_dropped_events(&mut self, dropped: u64) {
        self.metrics.set_gauge("recorder.events_dropped", dropped);
    }

    /// Folds a finished run's promotion ledger into the registry: the
    /// promotion latency-to-benefit histogram, predicted/realized
    /// totals, and the run-level `prediction_accuracy` (scaled by 1e6,
    /// since gauges are integers — see `ledger.prediction_accuracy_ppm`).
    pub fn ingest_ledger(&mut self, ledger: &PromotionLedger) {
        for e in ledger.entries() {
            if let Some(ttb) = e.intervals_to_benefit {
                self.metrics.observe("ledger.intervals_to_benefit", ttb);
            }
            self.metrics
                .observe("ledger.predicted_walks", e.predicted_walks);
            self.metrics.observe(
                "ledger.realized_walks_saved",
                e.realized_walks_saved() as u64,
            );
        }
        let s = ledger.summary();
        self.metrics.set_gauge("ledger.promotions", s.promotions);
        self.metrics.set_gauge("ledger.demotions", s.demotions);
        self.metrics.set_gauge(
            "ledger.prediction_accuracy_ppm",
            (s.prediction_accuracy * 1e6).round() as u64,
        );
    }

    /// Merges another recorder's aggregates into this one (counters and
    /// histograms add, gauges take max, summary rows and spans append).
    /// Merging per-cell recorders in submission order yields output
    /// identical to a sequential run's, which is what keeps `--jobs N`
    /// byte-stable.
    pub fn merge(&mut self, other: &TelemetryRecorder) {
        self.metrics.merge(&other.metrics);
        self.summary_rows.extend(other.summary_rows.iter().cloned());
    }

    fn fault_counter(size: PageSize) -> &'static str {
        match size {
            PageSize::Base4K => "fault.4k",
            PageSize::Huge2M => "fault.2m",
            PageSize::Huge1G => "fault.1g",
        }
    }
}

impl Recorder for TelemetryRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: u64, event: Event) {
        match event {
            Event::TlbHit { level, .. } => {
                self.metrics.inc(match level {
                    TlbLevel::L1 => "tlb_hit.l1",
                    TlbLevel::L2 => "tlb_hit.l2",
                });
            }
            Event::Walk {
                core,
                levels,
                effective_levels,
                ..
            } => {
                self.metrics.inc("walk");
                let cycles = u64::from(effective_levels) * self.cycles_per_level;
                self.metrics.observe("walk_cycles", cycles);
                let id = self.spans.push(
                    "walk",
                    "hw",
                    PID_HW,
                    core.0,
                    at,
                    cycles.max(1),
                    None,
                    vec![
                        ("levels", u64::from(levels)),
                        ("effective_levels", u64::from(effective_levels)),
                    ],
                );
                self.last_walk_span.insert(core.0, (id, at));
            }
            Event::Fault { size, .. } => {
                self.metrics.inc(Self::fault_counter(size));
            }
            Event::PccUpdate {
                core,
                action,
                decayed,
                ..
            } => {
                self.metrics.inc(match action {
                    PccAction::Hit(_) => "pcc.hit",
                    PccAction::Inserted => "pcc.insert",
                    PccAction::InsertedWithEviction(_) => "pcc.insert_evict",
                    PccAction::FilteredColdMiss => "pcc.cold_filtered",
                });
                if decayed {
                    self.metrics.inc("pcc.decay");
                }
                // The walk that fed this update is the span this core
                // pushed at the same timestamp.
                let parent = self
                    .last_walk_span
                    .get(&core.0)
                    .filter(|&&(_, walk_at)| walk_at == at)
                    .map(|&(id, _)| id);
                self.spans
                    .push("pcc_update", "hw", PID_HW, core.0, at, 1, parent, vec![]);
            }
            Event::PromotionDecision {
                process,
                region,
                rank,
                predicted_walks,
                ..
            } => {
                self.metrics.inc("promote");
                self.metrics
                    .observe("promotion_predicted_walks", predicted_walks);
                let id = self.spans.push(
                    "promote",
                    "os",
                    PID_OS,
                    0,
                    at,
                    1,
                    None,
                    vec![
                        ("process", u64::from(process.0)),
                        ("region", region.index()),
                        ("rank", u64::from(rank)),
                        ("predicted_walks", predicted_walks),
                    ],
                );
                self.promote_spans.insert((process.0, region.index()), id);
            }
            Event::PromotionFailure { reason } => {
                self.metrics.inc(match reason {
                    FailureReason::NoFrames => "promote_fail.no_frames",
                    FailureReason::BudgetExhausted => "promote_fail.budget",
                });
            }
            Event::Compaction {
                process,
                region,
                pages_migrated,
            } => {
                self.metrics.inc("compact");
                self.metrics
                    .observe("compaction_pages_migrated", pages_migrated);
                let parent = self
                    .promote_spans
                    .get(&(process.0, region.index()))
                    .copied();
                self.spans.push(
                    "compact",
                    "os",
                    PID_OS,
                    0,
                    at,
                    pages_migrated.max(1),
                    parent,
                    vec![("pages_migrated", pages_migrated)],
                );
            }
            Event::Demotion { process, region } => {
                self.metrics.inc("demote");
                self.spans.push(
                    "demote",
                    "os",
                    PID_OS,
                    0,
                    at,
                    1,
                    None,
                    vec![
                        ("process", u64::from(process.0)),
                        ("region", region.index()),
                    ],
                );
            }
            Event::Shootdown {
                process,
                region,
                entries_flushed,
            } => {
                self.metrics.inc("shootdown");
                self.metrics
                    .observe("shootdown_entries_flushed", entries_flushed);
                let parent = self
                    .promote_spans
                    .get(&(process.0, region.index()))
                    .copied();
                self.spans.push(
                    "shootdown",
                    "os",
                    PID_OS,
                    0,
                    at,
                    entries_flushed.max(1),
                    parent,
                    vec![("entries_flushed", entries_flushed)],
                );
            }
            Event::ShootdownStorm {
                core,
                entries_flushed,
            } => {
                // Storm flushes share the per-region histogram so chaos
                // runs account for every discarded translation, plus a
                // dedicated counter separating storms from promotion
                // shootdowns.
                self.metrics.inc("shootdown_storm");
                self.metrics
                    .observe("shootdown_entries_flushed", entries_flushed);
                self.spans.push(
                    "shootdown_storm",
                    "os",
                    PID_OS,
                    0,
                    at,
                    entries_flushed.max(1),
                    None,
                    vec![
                        ("core", u64::from(core.0)),
                        ("entries_flushed", entries_flushed),
                    ],
                );
            }
            Event::Interval(s) => {
                self.metrics.set_gauge("interval", s.interval);
                self.metrics.set_gauge("pcc_occupancy", s.pcc_occupancy);
                self.metrics.set_gauge("pcc_capacity", s.pcc_capacity);
                self.metrics.set_gauge("free_2m_blocks", s.free_huge_blocks);
                self.metrics
                    .set_gauge("huge_pages_resident", s.huge_pages_resident);
                self.metrics.set_gauge("bloat_bytes", s.bloat_bytes);
                self.metrics
                    .observe("pcc_occupancy_samples", s.pcc_occupancy);
                self.spans.push(
                    "interval",
                    "os",
                    PID_OS,
                    0,
                    self.last_boundary_at,
                    at.saturating_sub(self.last_boundary_at).max(1),
                    None,
                    vec![("index", s.interval)],
                );
                // Summary row: deltas since the previous boundary.
                let walks = self.metrics.counter("walk");
                let hits = self.metrics.counter("tlb_hit.l1") + self.metrics.counter("tlb_hit.l2");
                let promotions = self.metrics.counter("promote");
                let demotions = self.metrics.counter("demote");
                let shootdowns = self.metrics.counter("shootdown");
                let faults = self.metrics.counter("fault.4k")
                    + self.metrics.counter("fault.2m")
                    + self.metrics.counter("fault.1g");
                self.summary_rows.push(format!(
                    "{:<8}  {:<8}  {:<5}  {:<8}  {:<6}  {:<8}  {:<7}  {}",
                    s.interval,
                    at - self.last_boundary_at,
                    walks - self.mark.walks,
                    hits - self.mark.hits,
                    faults - self.mark.faults,
                    promotions - self.mark.promotions,
                    demotions - self.mark.demotions,
                    shootdowns - self.mark.shootdowns,
                ));
                self.mark = SummaryMark {
                    walks,
                    hits,
                    promotions,
                    demotions,
                    shootdowns,
                    faults,
                };
                self.last_boundary_at = at;
                // Causality never crosses an interval boundary.
                self.promote_spans.clear();
            }
            Event::FaultInjected { .. } => self.metrics.inc("fault_injected"),
            Event::PromotionDeferred { .. } => self.metrics.inc("defer"),
            Event::PressureEnter { .. } => self.metrics.inc("pressure_enter"),
            Event::PressureExit { .. } => self.metrics.inc("pressure_exit"),
            Event::BloatRecovered { bytes, .. } => {
                self.metrics.inc("bloat_recovered");
                self.metrics.inc_by("bloat_recovered_bytes", bytes);
            }
            Event::CellPanicked { .. } => self.metrics.inc("cell.panic"),
            Event::CellRetried { backoff_ms, .. } => {
                self.metrics.inc("cell.retry");
                self.metrics.observe("cell.retry_backoff_ms", backoff_ms);
            }
            Event::CellSoftDeadline { .. } => self.metrics.inc("cell.deadline_soft"),
            Event::CellHardDeadline { .. } => self.metrics.inc("cell.deadline_hard"),
            Event::HostPromotion {
                process,
                region,
                predicted_walks,
            } => {
                self.metrics.inc("host_promote");
                self.metrics
                    .observe("promotion_predicted_walks", predicted_walks);
                self.spans.push(
                    "host_promote",
                    "os",
                    PID_OS,
                    0,
                    at,
                    1,
                    None,
                    vec![
                        ("vm", u64::from(process.0)),
                        ("gpa_region", region.index()),
                        ("predicted_walks", predicted_walks),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_obs::{IntervalSnapshot, FREQ_HISTOGRAM_BUCKETS};
    use hpage_types::{CoreId, ProcessId, Vpn};

    fn region(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Huge2M)
    }

    fn walk(core: u32) -> Event {
        Event::Walk {
            core: CoreId(core),
            size: PageSize::Base4K,
            levels: 4,
            effective_levels: 2,
            a_bit_was_set: true,
        }
    }

    fn snapshot(interval: u64) -> Event {
        Event::Interval(IntervalSnapshot {
            interval,
            pcc_occupancy: 10,
            pcc_capacity: 64,
            freq_histogram: [0; FREQ_HISTOGRAM_BUCKETS],
            l1_hit_rate: 0.9,
            l2_hit_rate: 0.05,
            walk_rate: 0.05,
            free_huge_blocks: 3,
            huge_pages_resident: 5,
            bloat_bytes: 0,
        })
    }

    #[test]
    fn walk_feeds_metrics_and_spans() {
        let mut t = TelemetryRecorder::new();
        assert!(t.enabled());
        t.record(100, walk(2));
        assert_eq!(t.metrics().counter("walk"), 1);
        let h = t.metrics().histogram("walk_cycles").unwrap();
        assert_eq!(h.sum(), 60, "2 effective levels x 30 cycles");
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans().spans()[0].tid, 2);
    }

    #[test]
    fn pcc_update_links_to_its_walk() {
        let mut t = TelemetryRecorder::new();
        t.record(100, walk(0));
        t.record(
            100,
            Event::PccUpdate {
                core: CoreId(0),
                granularity: PageSize::Huge2M,
                region: region(7),
                action: PccAction::Inserted,
                decayed: false,
            },
        );
        // A different core's update at the same time must NOT link.
        t.record(100, walk(1));
        t.record(
            101,
            Event::PccUpdate {
                core: CoreId(1),
                granularity: PageSize::Huge2M,
                region: region(8),
                action: PccAction::Hit(3),
                decayed: false,
            },
        );
        let spans = t.spans().spans();
        assert_eq!(spans[1].name, "pcc_update");
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[3].parent, None, "timestamp mismatch breaks the link");
        assert_eq!(t.metrics().counter("pcc.insert"), 1);
        assert_eq!(t.metrics().counter("pcc.hit"), 1);
    }

    #[test]
    fn promotion_chain_is_causally_linked() {
        let mut t = TelemetryRecorder::new();
        let promote = Event::PromotionDecision {
            process: ProcessId(0),
            region: region(5),
            rank: 0,
            policy: "pcc",
            predicted_walks: 40,
        };
        t.record(1_000, promote);
        t.record(
            1_000,
            Event::Compaction {
                process: ProcessId(0),
                region: region(5),
                pages_migrated: 12,
            },
        );
        t.record(
            1_000,
            Event::Shootdown {
                process: ProcessId(0),
                region: region(5),
                entries_flushed: 3,
            },
        );
        let spans = t.spans().spans();
        let promote_id = spans[0].id;
        assert_eq!(spans[1].name, "compact");
        assert_eq!(spans[1].parent, Some(promote_id));
        assert_eq!(spans[2].name, "shootdown");
        assert_eq!(spans[2].parent, Some(promote_id));
        assert_eq!(
            t.metrics()
                .histogram("promotion_predicted_walks")
                .unwrap()
                .max(),
            40
        );
        // The boundary clears the link map: a later shootdown of the
        // same region (e.g. a demotion's) has no promote parent.
        t.record(2_000, snapshot(0));
        t.record(
            2_000,
            Event::Shootdown {
                process: ProcessId(0),
                region: region(5),
                entries_flushed: 1,
            },
        );
        assert_eq!(t.spans().spans().last().unwrap().parent, None);
    }

    #[test]
    fn interval_rows_hold_deltas() {
        let mut t = TelemetryRecorder::new();
        t.record(1, walk(0));
        t.record(2, walk(0));
        t.record(1_000, snapshot(0));
        t.record(1_001, walk(0));
        t.record(2_000, snapshot(1));
        let summary = t.interval_summary();
        let rows: Vec<&str> = summary.lines().collect();
        assert_eq!(rows.len(), 3, "header + 2 intervals: {summary}");
        assert!(rows[1].starts_with('0'), "{summary}");
        let walks_row0: u64 = rows[1].split_whitespace().nth(2).unwrap().parse().unwrap();
        let walks_row1: u64 = rows[2].split_whitespace().nth(2).unwrap().parse().unwrap();
        assert_eq!(walks_row0, 2);
        assert_eq!(walks_row1, 1, "second row counts only its own interval");
        assert_eq!(t.metrics().gauge("pcc_occupancy"), Some(10));
    }

    #[test]
    fn snapshot_exposes_span_drops() {
        let mut t = TelemetryRecorder::new().with_span_capacity(1);
        t.record(1, walk(0));
        t.record(2, walk(0));
        t.record(3, walk(0));
        assert_eq!(t.spans().dropped(), 2);
        let m = t.metrics_snapshot();
        assert_eq!(m.gauge("telemetry.spans_dropped"), Some(2));
        assert_eq!(m.counter("walk"), 3, "metrics never drop");
        t.note_dropped_events(17);
        assert_eq!(t.metrics().gauge("recorder.events_dropped"), Some(17));
    }

    #[test]
    fn ledger_ingest_scales_accuracy_to_ppm() {
        use hpage_os::RegionWalks;
        let mut ledger = PromotionLedger::new();
        let mut walks: RegionWalks = RegionWalks::default();
        walks.insert((0, 5), 40);
        ledger.observe_interval(&walks);
        ledger.record_promotion(ProcessId(0), region(5), 1_000, 40);
        ledger.observe_interval(&RegionWalks::default());
        let mut t = TelemetryRecorder::new();
        t.ingest_ledger(&ledger);
        assert_eq!(
            t.metrics().gauge("ledger.prediction_accuracy_ppm"),
            Some(1_000_000)
        );
        assert_eq!(t.metrics().gauge("ledger.promotions"), Some(1));
        assert_eq!(
            t.metrics()
                .histogram("ledger.intervals_to_benefit")
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn supervisor_events_feed_cell_counters() {
        let mut t = TelemetryRecorder::new();
        t.record(
            0,
            Event::CellPanicked {
                cell: 3,
                attempt: 1,
            },
        );
        t.record(
            0,
            Event::CellRetried {
                cell: 3,
                attempt: 2,
                backoff_ms: 14,
            },
        );
        t.record(
            0,
            Event::CellSoftDeadline {
                cell: 0,
                elapsed_ms: 1_200,
            },
        );
        t.record(
            0,
            Event::CellHardDeadline {
                cell: 0,
                attempt: 2,
            },
        );
        assert_eq!(t.metrics().counter("cell.panic"), 1);
        assert_eq!(t.metrics().counter("cell.retry"), 1);
        assert_eq!(t.metrics().counter("cell.deadline_soft"), 1);
        assert_eq!(t.metrics().counter("cell.deadline_hard"), 1);
        assert_eq!(
            t.metrics()
                .histogram("cell.retry_backoff_ms")
                .unwrap()
                .max(),
            14
        );
    }

    #[test]
    fn snapshot_mirrors_sink_error_counter() {
        let errors = Arc::new(AtomicU64::new(0));
        let t = TelemetryRecorder::new().with_sink_error_counter(errors.clone());
        assert_eq!(t.metrics_snapshot().gauge("sink.io_errors"), Some(0));
        errors.fetch_add(3, Ordering::Relaxed);
        assert_eq!(t.metrics_snapshot().gauge("sink.io_errors"), Some(3));
        // Without a counter attached the gauge is absent, not zero.
        assert_eq!(
            TelemetryRecorder::new()
                .metrics_snapshot()
                .gauge("sink.io_errors"),
            None
        );
    }

    #[test]
    fn merge_appends_rows_and_adds_counters() {
        let mut a = TelemetryRecorder::new();
        a.record(1, walk(0));
        a.record(1_000, snapshot(0));
        let mut b = TelemetryRecorder::new();
        b.record(5, walk(1));
        b.record(5, walk(1));
        b.record(1_000, snapshot(0));
        a.merge(&b);
        assert_eq!(a.metrics().counter("walk"), 3);
        assert_eq!(a.interval_summary().lines().count(), 3);
    }
}
