//! The metrics registry: monotonic counters, gauges, and log-linear
//! histograms, all keyed by `&'static str` names so recording never
//! allocates for the key and snapshots iterate in a deterministic
//! (lexicographic) order.

use std::collections::BTreeMap;

use hpage_obs::json::esc;

/// A log-linear histogram of `u64` samples.
///
/// Buckets grow geometrically (powers of two) but each power-of-two
/// decade is split into 4 linear sub-buckets, so relative error is
/// bounded at ~25% while the whole value range 0..2^63 fits in ~252
/// buckets. This is the same shape HdrHistogram and the kernel's
/// `blk-stat` use; here it is hand-rolled because the build is offline.
///
/// Values 0–3 get exact buckets; from 4 up, a value with most
/// significant bit `m` lands in bucket `(m-1)*4 + ((v >> (m-2)) & 3)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a value (see type docs for the math).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 2)) & 3) as usize;
        (msb - 1) * 4 + sub
    }
}

/// Inclusive lower bound of bucket `i` (the smallest value mapping to it).
fn bucket_lower_bound(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let msb = i / 4 + 1;
        let sub = (i % 4) as u64;
        (1u64 << msb) + (sub << (msb - 2))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let b = bucket_of(v);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket holding the `ceil(q * count)`-th sample. Exact for values
    /// < 4, within ~25% above.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` (elementwise bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
            .collect()
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// All maps are `BTreeMap` so every rendering (text or JSONL) iterates
/// in lexicographic name order — snapshots of a deterministic run are
/// byte-stable, and snapshots of per-thread registries merged in
/// submission order are identical to a sequential run's.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by 1.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Increments counter `name` by `delta`.
    #[inline]
    pub fn inc_by(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters and histogram buckets add;
    /// gauges take the maximum (the merge of per-thread point-in-time
    /// readings has no single "last" value, and max is
    /// order-independent, which keeps parallel merges deterministic).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &other.gauges {
            let g = self.gauges.entry(name).or_insert(v);
            *g = (*g).max(v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Renders the registry as aligned text, one metric per line,
    /// sorted by name within each section.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name}  count={} sum={} min={} p50={} p99={} max={}\n",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max()
                ));
            }
        }
        out
    }

    /// Renders the registry as JSON Lines: one record per metric, with
    /// a `"metric"` discriminator, sorted by section then name.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"metric\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
                esc(name)
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"metric\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}\n",
                esc(name)
            ));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(lb, c)| format!("[{lb},{c}]"))
                .collect();
            out.push_str(&format!(
                "{{\"metric\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
                esc(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                buckets.join(",")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_obs::json::assert_json_shape;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // The first log-linear decade continues contiguously: 4..8 map
        // to buckets 4..8 exactly (msb=2, stride 1).
        for v in 4..8u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        assert_eq!(bucket_of(8), 8);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's lower bound maps back to that bucket, and
        // bounds strictly increase.
        let mut prev = None;
        for i in 0..200 {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_of(lb), i, "lower bound {lb} of bucket {i}");
            if let Some(p) = prev {
                assert!(lb > p);
            }
            prev = Some(lb);
        }
        // Extremes don't panic.
        let _ = bucket_of(u64::MAX);
        assert_eq!(bucket_of(u64::MAX), bucket_of(u64::MAX - 1));
    }

    #[test]
    fn histogram_tracks_stats_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 3);
        assert!(
            h.quantile(1.0) >= 768,
            "p100 ~ max, got {}",
            h.quantile(1.0)
        );
        // Relative error bound: the p-estimate of a single-value
        // histogram is within 25% below the true value.
        let mut one = Histogram::new();
        one.observe(777);
        let est = one.quantile(0.5);
        assert!(est <= 777 && est as f64 >= 777.0 * 0.75, "est {est}");
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.observe(v * 7)
            } else {
                b.observe(v * 7)
            }
            both.observe(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, both, "merge must equal recording the union");
        // Merging an empty histogram is a no-op.
        let before = both.clone();
        both.merge(&Histogram::new());
        assert_eq!(both, before);
    }

    #[test]
    fn registry_records_and_renders_deterministically() {
        let mut r = MetricsRegistry::new();
        r.inc("walk");
        r.inc_by("walk", 2);
        r.set_gauge("pcc_occupancy", 17);
        r.set_gauge("pcc_occupancy", 13); // last write wins
        r.observe("walk_cycles", 120);
        r.observe("walk_cycles", 60);
        assert_eq!(r.counter("walk"), 3);
        assert_eq!(r.gauge("pcc_occupancy"), Some(13));
        assert_eq!(r.histogram("walk_cycles").unwrap().count(), 2);
        assert_eq!(r.counter("never"), 0);
        let text = r.render_text();
        assert!(text.contains("walk"), "{text}");
        assert_eq!(text, r.render_text(), "text render is stable");
        for line in r.to_jsonl().lines() {
            assert_json_shape(line);
        }
    }

    #[test]
    fn registry_merge_is_deterministic_and_additive() {
        let mut a = MetricsRegistry::new();
        a.inc_by("walk", 10);
        a.set_gauge("occ", 5);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.inc_by("walk", 7);
        b.inc("only_b");
        b.set_gauge("occ", 9);
        b.observe("h", 400);

        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.counter("walk"), 17);
        assert_eq!(ab.counter("only_b"), 1);
        assert_eq!(ab.gauge("occ"), Some(9), "gauge merge takes max");
        assert_eq!(ab.histogram("h").unwrap().count(), 2);

        // Gauge-max makes merge order-independent.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.render_text(), ba.render_text());
        assert_eq!(ab.to_jsonl(), ba.to_jsonl());
    }
}
