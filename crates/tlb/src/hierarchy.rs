//! The per-core two-level TLB hierarchy of the paper's Table 2.

use crate::table::Translation;
use crate::tlb::SetAssocTlb;
use hpage_types::{PageSize, TlbConfig, VirtAddr, Vpn};

/// Where a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the L1 D-TLB; carries the cached translation.
    L1Hit(Translation),
    /// Missed L1, hit the unified L2 TLB (entry is promoted into the
    /// matching L1 on the way back); carries the cached translation.
    L2Hit(Translation),
    /// Missed the whole hierarchy: the hardware must walk the page table.
    Miss,
}

impl TlbOutcome {
    /// The translation, when the lookup hit.
    pub fn translation(&self) -> Option<Translation> {
        match self {
            TlbOutcome::L1Hit(t) | TlbOutcome::L2Hit(t) => Some(*t),
            TlbOutcome::Miss => None,
        }
    }
}

/// Aggregate statistics for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbHierarchyStats {
    /// Total address lookups.
    pub accesses: u64,
    /// Lookups satisfied by any L1 structure.
    pub l1_hits: u64,
    /// Lookups satisfied by the L2 TLB.
    pub l2_hits: u64,
    /// Lookups that missed everywhere (page-table walks).
    pub walks: u64,
    /// L1 hits broken down by page size, indexed as [`PageSize::ALL`]
    /// (4 KiB, 2 MiB, 1 GiB).
    pub l1_hits_by_size: [u64; 3],
    /// L2 hits broken down by page size, same indexing.
    pub l2_hits_by_size: [u64; 3],
}

impl TlbHierarchyStats {
    /// Fraction of accesses missing the whole hierarchy, in `[0, 1]`.
    /// This is the paper's "TLB miss %" / "PTW %" metric.
    pub fn walk_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.walks as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses missing the L1 (hitting L2 or walking).
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.l2_hits + self.walks) as f64 / self.accesses as f64
        }
    }
}

/// A core's data-TLB hierarchy: split-size L1 (4 KiB / 2 MiB / 1 GiB) in
/// front of a unified L2 that holds 4 KiB and 2 MiB entries (Haswell's STLB
/// does not cache 1 GiB translations; configurable).
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    config: TlbConfig,
    l1_4k: SetAssocTlb,
    l1_2m: SetAssocTlb,
    l1_1g: SetAssocTlb,
    l2: SetAssocTlb,
    /// Full-hierarchy misses. Hits are *not* counted here — each level
    /// already counts its own, and [`stats`](Self::stats) assembles the
    /// aggregate view on demand, keeping the L1-hit fast path free of
    /// redundant counter traffic.
    walks: u64,
    /// L2 hits by page size (the unified L2's own counter cannot
    /// attribute sizes).
    l2_hits_by_size: [u64; 3],
    /// Page size of the most recent L1 hit or fill — probed first on
    /// the next lookup. Pure probe-order steering: an address is
    /// resident at most one page size (shootdowns precede every mapping
    /// change) and a missed `touch` leaves a level's clock and stats
    /// untouched, so the hint cannot change any outcome or statistic,
    /// only how many sets are scanned before the hit.
    l1_hint: PageSize,
}

impl TlbHierarchy {
    /// Builds the hierarchy from a [`TlbConfig`].
    ///
    /// # Panics
    ///
    /// Panics if any level's geometry is invalid.
    pub fn new(config: TlbConfig) -> Self {
        TlbHierarchy {
            l1_4k: SetAssocTlb::new(config.l1_4k),
            l1_2m: SetAssocTlb::new(config.l1_2m),
            l1_1g: SetAssocTlb::new(config.l1_1g),
            l2: SetAssocTlb::new(config.l2),
            config,
            walks: 0,
            l2_hits_by_size: [0; 3],
            l1_hint: PageSize::Base4K,
        }
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Aggregate statistics, assembled from the per-level counters (the
    /// levels count their own hits; only walks and the L2 size breakdown
    /// live here).
    pub fn stats(&self) -> TlbHierarchyStats {
        let l1_hits_by_size = [
            self.l1_4k.stats().hits,
            self.l1_2m.stats().hits,
            self.l1_1g.stats().hits,
        ];
        let l1_hits = l1_hits_by_size.iter().sum::<u64>();
        let l2_hits = self.l2.stats().hits;
        TlbHierarchyStats {
            accesses: l1_hits + l2_hits + self.walks,
            l1_hits,
            l2_hits,
            walks: self.walks,
            l1_hits_by_size,
            l2_hits_by_size: self.l2_hits_by_size,
        }
    }

    #[inline(always)]
    fn l1_for(&mut self, size: PageSize) -> &mut SetAssocTlb {
        match size {
            PageSize::Base4K => &mut self.l1_4k,
            PageSize::Huge2M => &mut self.l1_2m,
            PageSize::Huge1G => &mut self.l1_1g,
        }
    }

    /// Looks up `va`. On an L2 hit the entry is promoted into the L1 of
    /// its size. On [`TlbOutcome::Miss`] the caller must walk the page
    /// table and call [`fill`](Self::fill) with the result.
    #[inline]
    pub fn lookup(&mut self, va: VirtAddr) -> TlbOutcome {
        // Probe the split L1s, most-recently-used size first: an address
        // can only be resident at the page size it is currently mapped
        // with, so probe order never changes which level hits. `touch`
        // is probe + recency refresh in one set scan; a miss leaves the
        // level's clock and stats untouched, like `probe`. The level's
        // own hit counter is the hierarchy's l1 stat.
        let hint = self.l1_hint;
        if let Some(t) = self.l1_for(hint).touch(va.vpn(hint)) {
            return TlbOutcome::L1Hit(t);
        }
        for size in PageSize::ALL {
            if size == hint {
                continue;
            }
            let vpn = va.vpn(size);
            if let Some(t) = self.l1_for(size).touch(vpn) {
                self.l1_hint = size;
                return TlbOutcome::L1Hit(t);
            }
        }
        // L2: unified over 4K + 2M (and optionally 1G).
        let mut l2_sizes: &[PageSize] = &[PageSize::Base4K, PageSize::Huge2M];
        if self.config.l2_holds_1g {
            l2_sizes = &PageSize::ALL;
        }
        for &size in l2_sizes {
            let vpn = va.vpn(size);
            if let Some(t) = self.l2.touch(vpn) {
                self.l2_hits_by_size[size as usize] += 1;
                // Promote into the L1 for this size.
                self.l1_for(size).insert(t);
                self.l1_hint = size;
                return TlbOutcome::L2Hit(t);
            }
        }
        self.walks += 1;
        TlbOutcome::Miss
    }

    /// Installs a translation returned by a page-table walk into the L1 of
    /// its size and (when the size is cached there) the L2. Returns the
    /// translation evicted from the L2, if any — the signal a §5.4.1
    /// victim cache would capture.
    pub fn fill(&mut self, translation: Translation) -> Option<Translation> {
        let size = translation.size();
        self.l1_for(size).insert(translation);
        // The access that walked retries at this size next.
        self.l1_hint = size;
        if size != PageSize::Huge1G || self.config.l2_holds_1g {
            self.l2.insert(translation)
        } else {
            None
        }
    }

    /// TLB shootdown for a huge region: removes every overlapping entry
    /// from all levels (stale base-page translations after promotion, or a
    /// stale huge translation after demotion). Returns total removed.
    pub fn shootdown(&mut self, region: Vpn) -> usize {
        self.l1_4k.invalidate_region(region)
            + self.l1_2m.invalidate_region(region)
            + self.l1_1g.invalidate_region(region)
            + self.l2.invalidate_region(region)
    }

    /// Flushes every level (e.g. on context switch).
    pub fn flush(&mut self) {
        self.l1_4k.flush();
        self.l1_2m.flush();
        self.l1_1g.flush();
        self.l2.flush();
    }

    /// Total resident entries across all levels.
    pub fn resident_entries(&self) -> usize {
        self.l1_4k.len() + self.l1_2m.len() + self.l1_1g.len() + self.l2.len()
    }

    /// Every translation resident anywhere in the hierarchy, in no
    /// particular order. A translation cached in both an L1 and the L2
    /// appears twice — the invariant auditor checks each copy against the
    /// live page table, so duplicates are intentional.
    pub fn resident_translations(&self) -> Vec<Translation> {
        self.l1_4k
            .entries()
            .chain(self.l1_2m.entries())
            .chain(self.l1_1g.entries())
            .chain(self.l2.entries())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::Pfn;

    fn t4k(i: u64) -> Translation {
        Translation {
            vpn: Vpn::new(i, PageSize::Base4K),
            pfn: Pfn::new(i, PageSize::Base4K),
        }
    }

    fn t2m(i: u64) -> Translation {
        Translation {
            vpn: Vpn::new(i, PageSize::Huge2M),
            pfn: Pfn::new(i, PageSize::Huge2M),
        }
    }

    fn hierarchy() -> TlbHierarchy {
        TlbHierarchy::new(TlbConfig::tiny())
    }

    #[test]
    fn miss_then_fill_then_l1_hit() {
        let mut h = hierarchy();
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(h.lookup(va), TlbOutcome::Miss);
        let t = Translation {
            vpn: va.vpn(PageSize::Base4K),
            pfn: Pfn::new(1, PageSize::Base4K),
        };
        h.fill(t);
        let hit = h.lookup(va);
        assert_eq!(hit, TlbOutcome::L1Hit(t));
        assert_eq!(hit.translation(), Some(t));
        assert_eq!(TlbOutcome::Miss.translation(), None);
        assert_eq!(h.stats().accesses, 2);
        assert_eq!(h.stats().walks, 1);
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = hierarchy();
        // Fill enough 4K entries mapping to the same L1 set to evict the
        // first from L1 while it survives in the larger L2.
        let l1_sets = TlbConfig::tiny().l1_4k.sets() as u64;
        let target = t4k(0);
        h.fill(target);
        for k in 1..=4 {
            h.fill(t4k(k * l1_sets)); // same L1 set as index 0
        }
        // Index 0 must be gone from L1 (4 ways) but present in L2.
        let outcome = h.lookup(target.vpn.base());
        assert_eq!(outcome, TlbOutcome::L2Hit(target));
        // Promotion: next access is an L1 hit.
        assert_eq!(h.lookup(target.vpn.base()), TlbOutcome::L1Hit(target));
    }

    #[test]
    fn huge_entry_hits_at_2m_l1() {
        let mut h = hierarchy();
        h.fill(t2m(3));
        let inside = Vpn::new(3, PageSize::Huge2M).base().offset(0x10_0000);
        assert_eq!(h.lookup(inside), TlbOutcome::L1Hit(t2m(3)));
    }

    #[test]
    fn one_gb_entries_skip_l2_by_default() {
        let mut h = hierarchy();
        let g = Translation {
            vpn: Vpn::new(2, PageSize::Huge1G),
            pfn: Pfn::new(2, PageSize::Huge1G),
        };
        h.fill(g);
        // Present in the 1G L1 only.
        assert_eq!(h.resident_entries(), 1);
        assert_eq!(h.lookup(VirtAddr::new(2 << 30)), TlbOutcome::L1Hit(g));
    }

    #[test]
    fn one_gb_entries_fill_l2_when_enabled() {
        let mut cfg = TlbConfig::tiny();
        cfg.l2_holds_1g = true;
        let mut h = TlbHierarchy::new(cfg);
        let g = Translation {
            vpn: Vpn::new(2, PageSize::Huge1G),
            pfn: Pfn::new(2, PageSize::Huge1G),
        };
        h.fill(g);
        assert_eq!(h.resident_entries(), 2);
    }

    #[test]
    fn shootdown_clears_all_levels() {
        let mut h = hierarchy();
        let region = Vpn::new(1, PageSize::Huge2M);
        // A base page inside the region, in both L1 and L2.
        h.fill(t4k(512));
        assert!(h.shootdown(region) >= 2);
        assert_eq!(h.lookup(t4k(512).vpn.base()), TlbOutcome::Miss);
    }

    #[test]
    fn shootdown_removes_huge_translation_on_demotion() {
        let mut h = hierarchy();
        h.fill(t2m(1));
        let removed = h.shootdown(Vpn::new(1, PageSize::Huge2M));
        assert_eq!(removed, 2); // L1-2M + L2 copies
        assert_eq!(h.lookup(t2m(1).vpn.base()), TlbOutcome::Miss);
    }

    #[test]
    fn flush_resets_contents_not_stats() {
        let mut h = hierarchy();
        h.fill(t4k(1));
        h.lookup(t4k(1).vpn.base());
        h.flush();
        assert_eq!(h.resident_entries(), 0);
        assert_eq!(h.stats().accesses, 1);
    }

    #[test]
    fn walk_ratio_math() {
        let mut h = hierarchy();
        let va = VirtAddr::new(0x8000);
        h.lookup(va); // miss
        h.fill(Translation {
            vpn: va.vpn(PageSize::Base4K),
            pfn: Pfn::new(8, PageSize::Base4K),
        });
        h.lookup(va); // hit
        assert!((h.stats().walk_ratio() - 0.5).abs() < 1e-12);
        assert!((h.stats().l1_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_size_hit_breakdown() {
        let mut h = hierarchy();
        h.fill(t4k(1));
        h.fill(t2m(9));
        h.lookup(t4k(1).vpn.base()); // L1 hit at 4K
        h.lookup(t2m(9).vpn.base()); // L1 hit at 2M
        assert_eq!(h.stats().l1_hits_by_size, [1, 1, 0]);
        assert_eq!(
            h.stats().l1_hits_by_size.iter().sum::<u64>(),
            h.stats().l1_hits
        );
        // Evict index 1 from its L1 set so the next lookup hits L2.
        let l1_sets = TlbConfig::tiny().l1_4k.sets() as u64;
        for k in 1..=4 {
            h.fill(t4k(1 + k * l1_sets));
        }
        assert!(matches!(h.lookup(t4k(1).vpn.base()), TlbOutcome::L2Hit(_)));
        assert_eq!(h.stats().l2_hits_by_size, [1, 0, 0]);
    }

    #[test]
    fn mru_size_hint_is_stats_invisible() {
        // Alternating page sizes thrash the hint every lookup; every
        // access must still resolve at its true size with exact counts.
        let mut h = hierarchy();
        h.fill(t4k(1));
        h.fill(t2m(9));
        for _ in 0..4 {
            assert_eq!(h.lookup(t4k(1).vpn.base()), TlbOutcome::L1Hit(t4k(1)));
            assert_eq!(h.lookup(t2m(9).vpn.base()), TlbOutcome::L1Hit(t2m(9)));
        }
        let s = h.stats();
        assert_eq!(s.l1_hits_by_size, [4, 4, 0]);
        assert_eq!(s.accesses, 8);
        assert_eq!(s.walks, 0);
        // A miss with a stale hint still misses everywhere, and the
        // probes along the way leave no trace in the stats.
        assert_eq!(h.lookup(VirtAddr::new(0xdead_beef_f000)), TlbOutcome::Miss);
        assert_eq!(h.stats().l1_hits, 8);
        assert_eq!(h.stats().walks, 1);
    }

    #[test]
    fn paper_config_constructs() {
        let h = TlbHierarchy::new(TlbConfig::paper());
        assert_eq!(h.config().l2.entries, 1024);
    }

    #[test]
    fn fill_reports_l2_victims() {
        let mut h = hierarchy();
        let l2_sets = TlbConfig::tiny().l2.sets() as u64;
        // Fill one L2 set past its 8 ways: the 9th fill evicts the LRU.
        let mut victim = None;
        for k in 0..9u64 {
            victim = h.fill(t4k(k * l2_sets));
        }
        assert_eq!(victim, Some(t4k(0)));
        // 1GB fills (not cached in L2 by default) never report victims.
        let g = Translation {
            vpn: Vpn::new(5, PageSize::Huge1G),
            pfn: Pfn::new(5, PageSize::Huge1G),
        };
        assert_eq!(h.fill(g), None);
    }
}
