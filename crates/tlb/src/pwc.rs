//! Page Walk Cache (PWC): caches upper-level page-table entries so a
//! walk can skip levels it has recently resolved.
//!
//! The paper's §5.4.1 discusses PWCs as a design alternative to the PCC:
//! they shorten walks to ~1.1–1.4 memory references but cannot identify
//! promotion candidates (they are size-blind). This model lets the walk
//! cost in `hpage-perf` reflect PWC hits: the effective number of levels a
//! walk references is `4 - skipped`.
//!
//! Intel-style split paging-structure caches are modelled: arrays for
//! PML4E (512 GiB tags), PDPTE (1 GiB tags) and PDE (2 MiB tags) entries.
//! A hit at a level lets the walk resume below it, down to a single leaf
//! reference on a PDE hit.

use hpage_types::{PageSize, TlbLevelConfig, VirtAddr, Vpn};

/// Statistics for one PWC instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PwcStats {
    /// Walks that consulted the PWC.
    pub walks: u64,
    /// Walks that skipped straight to the leaf PTE (PDE-cache hit).
    pub pde_hits: u64,
    /// Walks that skipped down to the PD level (PDPTE-cache hit).
    pub pdpte_hits: u64,
    /// Walks that skipped only the top level (PML4E-cache hit).
    pub pml4e_hits: u64,
    /// Walks with no PWC hit (full walk).
    pub misses: u64,
    /// Total page-table levels actually referenced.
    pub levels_referenced: u64,
}

impl PwcStats {
    /// Mean page-table references per walk (the paper quotes 1.1–1.4 for
    /// real PWCs; a leaf PTE reference is always needed).
    pub fn mean_references(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.levels_referenced as f64 / self.walks as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    last_used: u64,
}

/// A fully-software model of a split paging-structure cache (Intel
/// terminology): separate arrays for PML4E, PDPTE, and PDE entries.
#[derive(Debug, Clone)]
pub struct PageWalkCache {
    /// PML4E cache: tags are 512 GiB-region indices (VA >> 39).
    pml4e: Vec<Entry>,
    pml4e_capacity: usize,
    /// PDPTE cache: tags are 1 GiB-region indices (VA >> 30).
    pdpte: Vec<Entry>,
    pdpte_capacity: usize,
    /// PDE cache: tags are 2 MiB-region indices (VA >> 21). Only
    /// meaningful for 4 KiB-leaf walks (a 2 MiB leaf *is* the PDE).
    pde: Vec<Entry>,
    pde_capacity: usize,
    clock: u64,
    stats: PwcStats,
}

impl PageWalkCache {
    /// Creates a PWC with the given capacities (fully associative, LRU).
    /// Skylake-era parts have roughly 4×PML4E, 16–32×PDPTE and
    /// 32–64×PDE entries.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    pub fn new(pml4e_entries: u32, pdpte_entries: u32, pde_entries: u32) -> Self {
        assert!(
            pml4e_entries > 0 && pdpte_entries > 0 && pde_entries > 0,
            "PWC arrays need at least one entry"
        );
        PageWalkCache {
            pml4e: Vec::with_capacity(pml4e_entries as usize),
            pml4e_capacity: pml4e_entries as usize,
            pdpte: Vec::with_capacity(pdpte_entries as usize),
            pdpte_capacity: pdpte_entries as usize,
            pde: Vec::with_capacity(pde_entries as usize),
            pde_capacity: pde_entries as usize,
            clock: 0,
            stats: PwcStats::default(),
        }
    }

    /// A typical modern-CPU geometry (4 PML4E, 32 PDPTE, 64 PDE).
    pub fn typical() -> Self {
        PageWalkCache::new(4, 32, 64)
    }

    /// Builds from [`TlbLevelConfig`]-style entries, ignoring
    /// associativity (PWCs are tiny and modelled fully associative).
    pub fn from_entries(config: (TlbLevelConfig, TlbLevelConfig, TlbLevelConfig)) -> Self {
        PageWalkCache::new(config.0.entries, config.1.entries, config.2.entries)
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &PwcStats {
        &self.stats
    }

    /// Probes an array, refreshing recency on a hit.
    fn probe(entries: &mut [Entry], tag: u64, clock: u64) -> bool {
        if let Some(e) = entries.iter_mut().find(|e| e.tag == tag) {
            e.last_used = clock;
            true
        } else {
            false
        }
    }

    /// Inserts a tag, evicting the LRU entry when full.
    fn install(entries: &mut Vec<Entry>, capacity: usize, tag: u64, clock: u64) {
        if Self::probe(entries, tag, clock) {
            return;
        }
        if entries.len() == capacity {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            entries.swap_remove(lru);
        }
        entries.push(Entry {
            tag,
            last_used: clock,
        });
    }

    /// Accounts one hardware walk for `va` whose leaf sits at
    /// `leaf_levels` radix levels from the root (4 for a 4 KiB PTE, 3
    /// for a 2 MiB PMD leaf, 2 for a 1 GiB PUD leaf). Returns the number
    /// of page-table levels actually referenced after PWC skipping, and
    /// installs the walked prefix entries.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_levels` is outside `2..=4`.
    pub fn walk(&mut self, va: VirtAddr, leaf_levels: u8) -> u8 {
        assert!((2..=4).contains(&leaf_levels), "leaf level out of range");
        self.clock += 1;
        self.stats.walks += 1;
        let tag_512g = va.raw() >> 39;
        let tag_1g = va.vpn(PageSize::Huge1G).index();
        let tag_2m = va.vpn(PageSize::Huge2M).index();

        // Deepest hit wins; structure levels above the hit are not
        // referenced, so their cache arrays are left untouched. The walk
        // installs every non-leaf entry it actually traverses: a PDE is
        // only a non-leaf on 4 KiB-leaf walks, and a PDPTE is only a
        // non-leaf when the leaf sits below it (3+ levels) — a 1 GiB-leaf
        // walk's PDPTE is the translation itself and paging-structure
        // caches never hold leaves.
        let referenced;
        if leaf_levels == 4 && Self::probe(&mut self.pde, tag_2m, self.clock) {
            referenced = 1; // just the leaf PTE
            self.stats.pde_hits += 1;
        } else if leaf_levels >= 3 && Self::probe(&mut self.pdpte, tag_1g, self.clock) {
            referenced = leaf_levels - 2;
            self.stats.pdpte_hits += 1;
            if leaf_levels == 4 {
                Self::install(&mut self.pde, self.pde_capacity, tag_2m, self.clock);
            }
        } else if Self::probe(&mut self.pml4e, tag_512g, self.clock) {
            referenced = leaf_levels - 1;
            self.stats.pml4e_hits += 1;
            if leaf_levels >= 3 {
                Self::install(&mut self.pdpte, self.pdpte_capacity, tag_1g, self.clock);
            }
            if leaf_levels == 4 {
                Self::install(&mut self.pde, self.pde_capacity, tag_2m, self.clock);
            }
        } else {
            referenced = leaf_levels;
            self.stats.misses += 1;
            Self::install(&mut self.pml4e, self.pml4e_capacity, tag_512g, self.clock);
            if leaf_levels >= 3 {
                Self::install(&mut self.pdpte, self.pdpte_capacity, tag_1g, self.clock);
            }
            if leaf_levels == 4 {
                Self::install(&mut self.pde, self.pde_capacity, tag_2m, self.clock);
            }
        }
        self.stats.levels_referenced += u64::from(referenced);
        referenced
    }

    /// Invalidates cached structure entries overlapping a huge region. A
    /// promotion/demotion rewrites the region's PDE, so the PDE-cache
    /// copy must go (and, conservatively, the covering PDPTE entry).
    pub fn invalidate_region(&mut self, region: Vpn) -> usize {
        let g = region.containing(PageSize::Huge1G).index();
        let m = region.index();
        let before = self.pdpte.len() + self.pde.len();
        self.pdpte.retain(|e| e.tag != g);
        self.pde.retain(|e| e.tag != m);
        before - self.pdpte.len() - self.pde.len()
    }

    /// Empties all arrays.
    pub fn flush(&mut self) {
        self.pml4e.clear();
        self.pdpte.clear();
        self.pde.clear();
    }
}

impl Default for PageWalkCache {
    fn default() -> Self {
        PageWalkCache::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_walk_references_all_levels() {
        let mut pwc = PageWalkCache::typical();
        assert_eq!(pwc.walk(VirtAddr::new(0x1234_5000), 4), 4);
        assert_eq!(pwc.stats().misses, 1);
    }

    #[test]
    fn repeat_walk_same_2m_region_hits_pde() {
        let mut pwc = PageWalkCache::typical();
        pwc.walk(VirtAddr::new(0x1234_5000), 4);
        // Same 2MB region: PDE hit, only the leaf PTE referenced.
        assert_eq!(pwc.walk(VirtAddr::new(0x1234_6000), 4), 1);
        assert_eq!(pwc.stats().pde_hits, 1);
        // Same 1GB region, different 2MB region: PDPTE hit (2 refs).
        assert_eq!(pwc.walk(VirtAddr::new(0x1255_0000), 4), 2);
        assert_eq!(pwc.stats().pdpte_hits, 1);
        assert!(pwc.stats().mean_references() < 4.0);
    }

    #[test]
    fn cross_1g_same_512g_skips_top_only() {
        let mut pwc = PageWalkCache::typical();
        pwc.walk(VirtAddr::new(0), 4);
        // Different 1GB region, same 512GB region: PML4E hit.
        assert_eq!(pwc.walk(VirtAddr::new(1 << 30), 4), 3);
        assert_eq!(pwc.stats().pml4e_hits, 1);
    }

    #[test]
    fn huge_leaf_walks_are_shorter() {
        let mut pwc = PageWalkCache::typical();
        assert_eq!(pwc.walk(VirtAddr::new(0x4000_0000), 3), 3); // cold 2MB leaf
        assert_eq!(pwc.walk(VirtAddr::new(0x4020_0000), 3), 1); // PDPTE hit
                                                                // A 1GB leaf with a PDPTE hit still needs the leaf reference.
        assert_eq!(pwc.walk(VirtAddr::new(0x4000_0000), 2), 1);
    }

    #[test]
    fn lru_eviction_in_pdpte_array() {
        let mut pwc = PageWalkCache::new(4, 2, 64);
        pwc.walk(VirtAddr::new(0), 4);
        pwc.walk(VirtAddr::new(1 << 30), 4);
        pwc.walk(VirtAddr::new(2 << 30), 4); // evicts 1GB region 0
                                             // Region 0 misses the PDPTE array (but hits the PDE cache from
                                             // its own earlier walk — same 2MB region).
        assert_eq!(pwc.walk(VirtAddr::new(0), 4), 1);
        // A *different* 2MB page in region 0 must pay the PML4E-only
        // path (PDE and PDPTE both miss).
        assert_eq!(pwc.walk(VirtAddr::new(0x40_0000), 4), 3);
    }

    #[test]
    fn huge_1g_leaf_does_not_seed_structure_cache() {
        // A 1 GiB-leaf walk's PDPTE *is* the translation, not a pointer
        // to a lower table; paging-structure caches never hold leaves.
        let mut pwc = PageWalkCache::typical();
        assert_eq!(pwc.walk(VirtAddr::new(0x4000_0000), 2), 2);
        // A later 4 KiB-leaf walk in the same 1 GiB region must pay the
        // PML4E-hit path (3 references), not a bogus PDPTE hit seeded by
        // the huge leaf above it.
        assert_eq!(pwc.walk(VirtAddr::new(0x4000_1000), 4), 3);
        assert_eq!(pwc.stats().pml4e_hits, 1);
        assert_eq!(pwc.stats().pdpte_hits, 0);
    }

    #[test]
    fn steady_state_approaches_paper_reference_rate() {
        // Hammer a handful of 1GB regions: mean references/walk should
        // approach the 1.1–1.4 the paper quotes for effective PWCs.
        let mut pwc = PageWalkCache::typical();
        for i in 0..10_000u64 {
            pwc.walk(VirtAddr::new((i % 8) << 30 | (i * 0x1000) & 0x3FFF_F000), 4);
        }
        let mean = pwc.stats().mean_references();
        assert!((1.0..1.5).contains(&mean), "mean refs {mean}");
    }

    #[test]
    fn invalidate_and_flush() {
        let mut pwc = PageWalkCache::typical();
        pwc.walk(VirtAddr::new(0x4000_0000), 4);
        let region = VirtAddr::new(0x4000_0000).vpn(PageSize::Huge2M);
        // Both the PDE entry and the covering PDPTE entry are dropped.
        assert_eq!(pwc.invalidate_region(region), 2);
        pwc.walk(VirtAddr::new(0x4000_0000), 4);
        pwc.flush();
        assert_eq!(pwc.walk(VirtAddr::new(0x4000_0000), 4), 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = PageWalkCache::new(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "leaf level")]
    fn bad_leaf_level_panics() {
        let mut pwc = PageWalkCache::typical();
        pwc.walk(VirtAddr::new(0), 5);
    }
}
