//! Nested (two-dimensional) page walks: virtualized translation where
//! every guest page-table access is itself translated by the host.
//!
//! Under virtualization a guest-virtual address resolves in two
//! dimensions: the guest page table maps gVA→gPA, but the guest's
//! table pages live in guest-physical memory, so *reading each guest
//! entry* first requires a host walk gPA→hPA. A cold 2D walk on
//! 4-level tables costs 4×(4+1)+4 = 24 memory references; huge pages
//! on either dimension shorten it (a 2 MiB guest leaf removes one
//! 5-reference step, a 2 MiB host page removes one reference from
//! every inner walk it covers):
//!
//! ```text
//! refs = Σ over referenced guest levels (host_refs(table gPA) + 1)
//!      + host_refs(data gPA)
//! ```
//!
//! [`NestedPwc`] models the translation caches that make real nested
//! paging viable: split guest paging-structure caches (VA-tagged),
//! split host paging-structure caches (gPA-tagged), and a fully
//! associative nested TLB caching gPA→hPA page translations (an nTLB
//! hit skips the host walk entirely). All seven arrays share one
//! monotonically increasing stamp counter, so every LRU decision is
//! total-ordered and representation-independent — which is what lets
//! [`ReferenceNestedWalker`], a naive `BTreeMap`-based model, predict
//! the fast walker's per-access reference count exactly.
//!
//! Guest table pages are given deterministic guest-physical addresses
//! by [`table_page_gpa`]: a pure function of (level, gVA) placing each
//! level's table pages in its own 2^39-byte segment above
//! [`TABLE_GPA_BASE`], far above any guest data frame, so table and
//! data gPAs never collide and the scheme needs no allocator state.

use crate::table::WalkResult;
use hpage_types::{HpageError, NestedConfig, PageSize, VirtAddr, Vpn};
use std::collections::BTreeMap;

/// Base guest-physical address of the synthetic guest-table-page
/// region: above any modelled guest RAM (≪ 2^46 bytes) and low enough
/// that every table gPA stays below 2^47.
pub const TABLE_GPA_BASE: u64 = 1 << 46;

/// Hard upper bound on memory references for one 2D walk: 4 guest
/// levels × (4-level host walk + entry read) + 4-level host walk for
/// the data page.
pub const MAX_NESTED_REFS: u8 = 24;

/// Guest-physical address of the guest table page the walker reads at
/// `level` (1 = PML4 root page, 2 = PDPT page, 3 = PD page, 4 = PT
/// page) while resolving `va`.
///
/// Each level gets a disjoint 2^39-byte segment above
/// [`TABLE_GPA_BASE`]; within a segment, pages are indexed by the VA
/// prefix that selects the table (the root is one page per guest). For
/// 48-bit guest VAs the deepest level's index (`va >> 21`) stays below
/// 2^27, so `index * 4096 < 2^39` and segments never overlap.
///
/// # Panics
///
/// Panics if `level` is outside `1..=4`.
pub fn table_page_gpa(level: u8, va: VirtAddr) -> VirtAddr {
    let prefix = match level {
        1 => 0,
        2 => va.raw() >> 39,
        3 => va.raw() >> 30,
        4 => va.raw() >> 21,
        _ => panic!("guest walk level out of range: {level}"),
    };
    VirtAddr::new(TABLE_GPA_BASE + ((u64::from(level) - 1) << 39) + prefix * 4096)
}

/// Nested-TLB tag for a guest-physical address translated through a
/// host mapping of the given size. Entries are tagged at the *host
/// mapping's* granularity — a 2 MiB host page yields one entry whose
/// tag is `gpa >> 21`, covering all 512 base pages of the region; a
/// 1 GiB host page covers its whole region with a single entry. The
/// size class lives in the tag's top bits so same-index entries of
/// different sizes never alias (gPAs fit in well under 60 bits).
pub fn ntlb_tag(size: PageSize, gpa: VirtAddr) -> u64 {
    let (class, shift) = match size {
        PageSize::Base4K => (0u64, 12),
        PageSize::Huge2M => (1, 21),
        PageSize::Huge1G => (2, 30),
    };
    (class << 60) | (gpa.raw() >> shift)
}

/// Whether a nested-TLB tag overlaps the guest-physical 2 MiB region
/// with index `m` (`gpa >> 21`): the region's own 4 KiB and 2 MiB
/// entries, and the 1 GiB entry containing it. Used by host-remap
/// invalidation, which must drop every translation the remap could
/// have changed.
fn ntlb_tag_covers_2m_region(tag: u64, m: u64) -> bool {
    let index = tag & ((1 << 60) - 1);
    match tag >> 60 {
        0 => index >> 9 == m,
        1 => index == m,
        _ => index == m >> 9,
    }
}

/// Guest-physical address of the data byte a completed guest walk
/// points at: the guest frame's base plus the VA's offset within the
/// guest page. Always below guest RAM size, hence disjoint from every
/// [`table_page_gpa`].
pub fn data_gpa(guest_walk: &WalkResult, va: VirtAddr) -> VirtAddr {
    let size = guest_walk.translation.size();
    VirtAddr::new(guest_walk.translation.pfn.base().raw() + va.page_offset(size))
}

/// The host dimension of nested translation: resolves a guest-physical
/// page, faulting it into host memory on demand. The simulator
/// implements this over a per-VM host address space; tests use
/// [`SimpleHost`].
pub trait HostSpace {
    /// Hardware-walks the host page table for `gpa` (setting accessed
    /// bits), establishing a mapping first if the page is not yet host-
    /// resident.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError`] when the host cannot back the page
    /// (e.g. host memory exhausted).
    fn walk_gpa(&mut self, gpa: VirtAddr) -> Result<WalkResult, HpageError>;
}

/// Statistics for one [`NestedPwc`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NestedPwcStats {
    /// 2D walks performed.
    pub walks: u64,
    /// Total memory references across all walks.
    pub levels_referenced: u64,
    /// Host walks skipped by a nested-TLB hit.
    pub ntlb_hits: u64,
    /// Host walks actually performed (nested-TLB misses).
    pub ntlb_misses: u64,
}

impl NestedPwcStats {
    /// Mean memory references per 2D walk (native PWCs land at 1.1–1.4;
    /// nested walks sit well above until both dimensions warm up).
    pub fn mean_references(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.levels_referenced as f64 / self.walks as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    stamp: u64,
}

/// Fully associative LRU array keyed by a region tag. Recency comes
/// from the owner's shared stamp counter, bumped on *every* touch, so
/// stamps are globally unique and the LRU victim is always unique.
#[derive(Debug, Clone)]
struct LruArray {
    entries: Vec<Entry>,
    capacity: usize,
}

impl LruArray {
    fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "nested PWC arrays need at least one entry");
        LruArray {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
        }
    }

    fn probe(&mut self, tag: u64, stamp: &mut u64) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            *stamp += 1;
            e.stamp = *stamp;
            true
        } else {
            false
        }
    }

    fn install(&mut self, tag: u64, stamp: &mut u64) {
        if self.probe(tag, stamp) {
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries.swap_remove(lru);
        }
        *stamp += 1;
        self.entries.push(Entry { tag, stamp: *stamp });
    }

    fn retain(&mut self, mut keep: impl FnMut(u64) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| keep(e.tag));
        before - self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Two-dimensional paging-structure caches plus nested TLB for one
/// core. See the module docs for the cost model.
#[derive(Debug, Clone)]
pub struct NestedPwc {
    // Guest dimension, tagged by guest-virtual prefixes.
    g_pml4e: LruArray,
    g_pdpte: LruArray,
    g_pde: LruArray,
    // Host dimension, tagged by guest-physical prefixes.
    h_pml4e: LruArray,
    h_pdpte: LruArray,
    h_pde: LruArray,
    /// gPA→hPA translations tagged at the *host mapping's* size (see
    /// [`ntlb_tag`]): one entry covers a 4 KiB page, a whole 2 MiB
    /// region, or a whole 1 GiB region. This reach multiplication is
    /// the architectural payoff of host-dimension huge pages.
    ntlb: LruArray,
    stamp: u64,
    stats: NestedPwcStats,
}

impl NestedPwc {
    /// Builds the cache complex from a validated [`NestedConfig`].
    ///
    /// # Panics
    ///
    /// Panics if any array capacity is zero (callers should
    /// [`NestedConfig::validate`] first).
    pub fn new(config: &NestedConfig) -> Self {
        NestedPwc {
            g_pml4e: LruArray::new(config.guest_pwc.pml4e_entries),
            g_pdpte: LruArray::new(config.guest_pwc.pdpte_entries),
            g_pde: LruArray::new(config.guest_pwc.pde_entries),
            h_pml4e: LruArray::new(config.host_pwc.pml4e_entries),
            h_pdpte: LruArray::new(config.host_pwc.pdpte_entries),
            h_pde: LruArray::new(config.host_pwc.pde_entries),
            ntlb: LruArray::new(config.ntlb_entries),
            stamp: 0,
            stats: NestedPwcStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &NestedPwcStats {
        &self.stats
    }

    /// Performs one 2D walk for `va`, whose guest leaf sits at
    /// `guest_leaf_levels` (4 = 4 KiB PTE, 3 = 2 MiB PMD leaf, 2 = 1 GiB
    /// PUD leaf) and whose resolved data byte lives at guest-physical
    /// `data_gpa`. Each referenced guest level's table page and the data
    /// page are translated through the nested TLB / host structure
    /// caches, calling `host` only on nTLB misses. Host walks actually
    /// performed are appended to `host_walks` (cleared first) so the
    /// caller can feed a host-side PCC and ledger.
    ///
    /// Returns the total memory references, guaranteed to lie in
    /// `1..=`[`MAX_NESTED_REFS`].
    ///
    /// # Errors
    ///
    /// Propagates [`HostSpace::walk_gpa`] failures (the caches are left
    /// consistent; the partially accounted walk is still counted).
    ///
    /// # Panics
    ///
    /// Panics if `guest_leaf_levels` is outside `2..=4`.
    pub fn walk<H: HostSpace>(
        &mut self,
        va: VirtAddr,
        guest_leaf_levels: u8,
        data_gpa: VirtAddr,
        host: &mut H,
        host_walks: &mut Vec<WalkResult>,
    ) -> Result<u8, HpageError> {
        let leaf = guest_leaf_levels;
        assert!((2..=4).contains(&leaf), "guest leaf level out of range");
        debug_assert!(
            data_gpa.raw() < TABLE_GPA_BASE,
            "data gPA collides with table segment"
        );
        host_walks.clear();
        self.stats.walks += 1;

        // Guest dimension: identical semantics to the native
        // PageWalkCache — deepest hit wins, leaves are never cached,
        // the walked non-leaf prefix is installed.
        let tag_512g = va.raw() >> 39;
        let tag_1g = va.raw() >> 30;
        let tag_2m = va.raw() >> 21;
        let referenced: u8;
        if leaf == 4 && self.g_pde.probe(tag_2m, &mut self.stamp) {
            referenced = 1;
        } else if leaf >= 3 && self.g_pdpte.probe(tag_1g, &mut self.stamp) {
            referenced = leaf - 2;
            if leaf == 4 {
                self.g_pde.install(tag_2m, &mut self.stamp);
            }
        } else if self.g_pml4e.probe(tag_512g, &mut self.stamp) {
            referenced = leaf - 1;
            if leaf >= 3 {
                self.g_pdpte.install(tag_1g, &mut self.stamp);
            }
            if leaf == 4 {
                self.g_pde.install(tag_2m, &mut self.stamp);
            }
        } else {
            referenced = leaf;
            self.g_pml4e.install(tag_512g, &mut self.stamp);
            if leaf >= 3 {
                self.g_pdpte.install(tag_1g, &mut self.stamp);
            }
            if leaf == 4 {
                self.g_pde.install(tag_2m, &mut self.stamp);
            }
        }

        // Host dimension: one entry read per referenced guest level,
        // each preceded by a gPA→hPA translation, plus the data page.
        let mut refs: u8 = 0;
        for level in (leaf - referenced + 1)..=leaf {
            refs += self.host_refs(table_page_gpa(level, va), host, host_walks)? + 1;
        }
        refs += self.host_refs(data_gpa, host, host_walks)?;
        self.stats.levels_referenced += u64::from(refs);
        Ok(refs)
    }

    /// Translates one guest-physical page, returning the host-walk
    /// reference count (0 on a nested-TLB hit).
    fn host_refs<H: HostSpace>(
        &mut self,
        gpa: VirtAddr,
        host: &mut H,
        host_walks: &mut Vec<WalkResult>,
    ) -> Result<u8, HpageError> {
        // A gPA is host-mapped at exactly one size at a time (remaps
        // invalidate), so at most one of the three probes can hit.
        if self
            .ntlb
            .probe(ntlb_tag(PageSize::Base4K, gpa), &mut self.stamp)
            || self
                .ntlb
                .probe(ntlb_tag(PageSize::Huge2M, gpa), &mut self.stamp)
            || self
                .ntlb
                .probe(ntlb_tag(PageSize::Huge1G, gpa), &mut self.stamp)
        {
            self.stats.ntlb_hits += 1;
            return Ok(0);
        }
        self.stats.ntlb_misses += 1;
        let walk = host.walk_gpa(gpa)?;
        let hleaf = walk.levels_referenced;
        let tag_512g = gpa.raw() >> 39;
        let tag_1g = gpa.raw() >> 30;
        let tag_2m = gpa.raw() >> 21;
        let referenced: u8;
        if hleaf == 4 && self.h_pde.probe(tag_2m, &mut self.stamp) {
            referenced = 1;
        } else if hleaf >= 3 && self.h_pdpte.probe(tag_1g, &mut self.stamp) {
            referenced = hleaf - 2;
            if hleaf == 4 {
                self.h_pde.install(tag_2m, &mut self.stamp);
            }
        } else if self.h_pml4e.probe(tag_512g, &mut self.stamp) {
            referenced = hleaf - 1;
            if hleaf >= 3 {
                self.h_pdpte.install(tag_1g, &mut self.stamp);
            }
            if hleaf == 4 {
                self.h_pde.install(tag_2m, &mut self.stamp);
            }
        } else {
            referenced = hleaf;
            self.h_pml4e.install(tag_512g, &mut self.stamp);
            if hleaf >= 3 {
                self.h_pdpte.install(tag_1g, &mut self.stamp);
            }
            if hleaf == 4 {
                self.h_pde.install(tag_2m, &mut self.stamp);
            }
        }
        self.ntlb
            .install(ntlb_tag(walk.translation.size(), gpa), &mut self.stamp);
        host_walks.push(walk);
        Ok(referenced)
    }

    /// Drops guest-side structure entries covering a guest-virtual
    /// 2 MiB region — the nested analogue of
    /// [`PageWalkCache::invalidate_region`](crate::PageWalkCache::invalidate_region),
    /// issued on guest promotion/demotion shootdowns. Returns entries
    /// dropped.
    pub fn invalidate_guest_region(&mut self, region: Vpn) -> usize {
        let g = region.containing(PageSize::Huge1G).index();
        let m = region.index();
        self.g_pdpte.retain(|tag| tag != g) + self.g_pde.retain(|tag| tag != m)
    }

    /// Drops host-side structure entries and nested-TLB translations
    /// covering a guest-physical 2 MiB region, issued when the host
    /// remaps it (host promotion/demotion). Returns entries dropped.
    pub fn invalidate_host_region(&mut self, region: Vpn) -> usize {
        let g = region.containing(PageSize::Huge1G).index();
        let m = region.index();
        self.h_pdpte.retain(|tag| tag != g)
            + self.h_pde.retain(|tag| tag != m)
            + self.ntlb.retain(|tag| !ntlb_tag_covers_2m_region(tag, m))
    }

    /// Empties every array (shootdown storms flush the whole complex).
    pub fn flush(&mut self) {
        self.g_pml4e.clear();
        self.g_pdpte.clear();
        self.g_pde.clear();
        self.h_pml4e.clear();
        self.h_pdpte.clear();
        self.h_pde.clear();
        self.ntlb.clear();
    }
}

/// A minimal in-memory host for tests and property checks: backs every
/// guest-physical page on first touch with a fresh frame, at a page
/// size chosen by pre-registered preferences, and supports promoting
/// already-resident regions (for monotonicity checks).
#[derive(Debug, Default)]
pub struct SimpleHost {
    table: crate::PageTable,
    next_frame: u64,
    huge_2m: std::collections::BTreeSet<u64>,
    huge_1g: std::collections::BTreeSet<u64>,
}

impl SimpleHost {
    /// An empty host mapping everything as 4 KiB pages.
    pub fn new() -> Self {
        SimpleHost::default()
    }

    /// Marks a guest-physical 2 MiB region (`gpa >> 21`) to be backed
    /// by a host huge page on first touch.
    pub fn prefer_2m(&mut self, region_index: u64) {
        self.huge_2m.insert(region_index);
    }

    /// Marks a guest-physical 1 GiB region (`gpa >> 30`) to be backed
    /// by a host gigantic page on first touch.
    pub fn prefer_1g(&mut self, region_index: u64) {
        self.huge_1g.insert(region_index);
    }

    /// Collapses an already-resident guest-physical 2 MiB region into a
    /// host huge page (host-dimension promotion).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::PageTable::promote_2m`] failures.
    pub fn promote_2m(&mut self, region_index: u64) -> Result<(), HpageError> {
        self.next_frame += 1;
        let pfn = hpage_types::Pfn::new(self.next_frame, PageSize::Huge2M);
        self.table
            .promote_2m(Vpn::new(region_index, PageSize::Huge2M), pfn)?;
        self.huge_2m.insert(region_index);
        Ok(())
    }

    /// The underlying host page table.
    pub fn table(&self) -> &crate::PageTable {
        &self.table
    }

    fn map_for(&mut self, gpa: VirtAddr) -> Result<(), HpageError> {
        self.next_frame += 1;
        let size = if self.huge_1g.contains(&(gpa.raw() >> 30)) {
            PageSize::Huge1G
        } else if self.huge_2m.contains(&(gpa.raw() >> 21)) {
            PageSize::Huge2M
        } else {
            PageSize::Base4K
        };
        self.table
            .map(gpa.vpn(size), hpage_types::Pfn::new(self.next_frame, size))
    }
}

impl HostSpace for SimpleHost {
    fn walk_gpa(&mut self, gpa: VirtAddr) -> Result<WalkResult, HpageError> {
        match self.table.walk(gpa) {
            Ok(w) => Ok(w),
            Err(HpageError::Unmapped { .. }) => {
                self.map_for(gpa)?;
                self.table.walk(gpa)
            }
            Err(e) => Err(e),
        }
    }
}

/// Naive slow-path 2D walker: the executable specification the fast
/// [`NestedPwc`] is property-tested against. Every cache array is a
/// plain ordered map from tag to last-touch stamp; eviction scans for
/// the minimum stamp. Because both implementations draw stamps from
/// one per-walker counter bumped on every touch, their LRU decisions —
/// and therefore their per-access reference counts — must agree
/// exactly.
#[derive(Debug, Default)]
pub struct ReferenceNestedWalker {
    guest: [ReferenceArray; 3],
    host: [ReferenceArray; 3],
    ntlb: ReferenceArray,
    clock: u64,
}

#[derive(Debug, Default)]
struct ReferenceArray {
    map: BTreeMap<u64, u64>,
    capacity: usize,
}

impl ReferenceArray {
    fn with_capacity(capacity: u32) -> Self {
        ReferenceArray {
            map: BTreeMap::new(),
            capacity: capacity as usize,
        }
    }

    fn touch(&mut self, tag: u64, clock: &mut u64) -> bool {
        match self.map.get_mut(&tag) {
            Some(stamp) => {
                *clock += 1;
                *stamp = *clock;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, tag: u64, clock: &mut u64) {
        if self.touch(tag, clock) {
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&tag, _)| tag)
                .expect("capacity > 0");
            self.map.remove(&victim);
        }
        *clock += 1;
        self.map.insert(tag, *clock);
    }
}

/// Tag selecting the structure-cache entry produced by referencing
/// table level `level` (1 = PML4E / 512 GiB, 2 = PDPTE / 1 GiB,
/// 3 = PDE / 2 MiB) while resolving `addr`.
fn level_tag(addr: u64, level: u8) -> u64 {
    match level {
        1 => addr >> 39,
        2 => addr >> 30,
        3 => addr >> 21,
        _ => unreachable!("structure levels are 1..=3"),
    }
}

impl ReferenceNestedWalker {
    /// Builds the reference model with the same geometry as
    /// [`NestedPwc::new`].
    pub fn new(config: &NestedConfig) -> Self {
        ReferenceNestedWalker {
            guest: [
                ReferenceArray::with_capacity(config.guest_pwc.pml4e_entries),
                ReferenceArray::with_capacity(config.guest_pwc.pdpte_entries),
                ReferenceArray::with_capacity(config.guest_pwc.pde_entries),
            ],
            host: [
                ReferenceArray::with_capacity(config.host_pwc.pml4e_entries),
                ReferenceArray::with_capacity(config.host_pwc.pdpte_entries),
                ReferenceArray::with_capacity(config.host_pwc.pde_entries),
            ],
            ntlb: ReferenceArray::with_capacity(config.ntlb_entries),
            clock: 0,
        }
    }

    /// One-dimensional structure-cache step: finds the deepest cached
    /// level, installs the walked non-leaf prefix, returns levels
    /// referenced.
    fn dim_walk(arrays: &mut [ReferenceArray; 3], clock: &mut u64, addr: u64, leaf: u8) -> u8 {
        let mut hit_level = 0u8;
        for level in (1..leaf).rev() {
            if arrays[level as usize - 1].touch(level_tag(addr, level), clock) {
                hit_level = level;
                break;
            }
        }
        for level in (hit_level + 1)..leaf {
            arrays[level as usize - 1].insert(level_tag(addr, level), clock);
        }
        leaf - hit_level
    }

    fn host_refs<H: HostSpace>(&mut self, gpa: VirtAddr, host: &mut H) -> Result<u8, HpageError> {
        // Same probe order as the fast path so LRU clocks stay aligned.
        if self
            .ntlb
            .touch(ntlb_tag(PageSize::Base4K, gpa), &mut self.clock)
            || self
                .ntlb
                .touch(ntlb_tag(PageSize::Huge2M, gpa), &mut self.clock)
            || self
                .ntlb
                .touch(ntlb_tag(PageSize::Huge1G, gpa), &mut self.clock)
        {
            return Ok(0);
        }
        let walk = host.walk_gpa(gpa)?;
        let refs = Self::dim_walk(
            &mut self.host,
            &mut self.clock,
            gpa.raw(),
            walk.levels_referenced,
        );
        self.ntlb
            .insert(ntlb_tag(walk.translation.size(), gpa), &mut self.clock);
        Ok(refs)
    }

    /// Slow-path equivalent of [`NestedPwc::walk`] (without the
    /// host-walk out-parameter; the reference model only predicts the
    /// reference count).
    ///
    /// # Errors
    ///
    /// Propagates [`HostSpace::walk_gpa`] failures.
    ///
    /// # Panics
    ///
    /// Panics if `guest_leaf_levels` is outside `2..=4`.
    pub fn walk<H: HostSpace>(
        &mut self,
        va: VirtAddr,
        guest_leaf_levels: u8,
        data_gpa: VirtAddr,
        host: &mut H,
    ) -> Result<u8, HpageError> {
        let leaf = guest_leaf_levels;
        assert!((2..=4).contains(&leaf), "guest leaf level out of range");
        let guest_referenced = Self::dim_walk(&mut self.guest, &mut self.clock, va.raw(), leaf);
        let mut refs = 0u8;
        for level in (leaf - guest_referenced + 1)..=leaf {
            refs += self.host_refs(table_page_gpa(level, va), host)? + 1;
        }
        refs += self.host_refs(data_gpa, host)?;
        Ok(refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cold_cost(guest_leaf: u8, host_size: Option<PageSize>) -> u8 {
        let mut host = SimpleHost::new();
        let cfg = NestedConfig::typical();
        let mut npwc = NestedPwc::new(&cfg);
        let va = VirtAddr::new(0x4000_2000);
        // Register every gPA region the walk can touch at the host size.
        if let Some(size) = host_size {
            for level in 1..=guest_leaf {
                let gpa = table_page_gpa(level, va);
                match size {
                    PageSize::Huge2M => host.prefer_2m(gpa.raw() >> 21),
                    PageSize::Huge1G => host.prefer_1g(gpa.raw() >> 30),
                    PageSize::Base4K => {}
                }
            }
            match size {
                PageSize::Huge2M => host.prefer_2m(0x4000_2000u64 >> 21),
                PageSize::Huge1G => host.prefer_1g(0x4000_2000u64 >> 30),
                PageSize::Base4K => {}
            }
        }
        let mut scratch = Vec::new();
        npwc.walk(
            va,
            guest_leaf,
            VirtAddr::new(0x4000_2000),
            &mut host,
            &mut scratch,
        )
        .unwrap()
    }

    #[test]
    fn cold_walk_costs_match_the_derivation() {
        // Lg guest levels, each (Lh + 1) references, plus Lh for data.
        assert_eq!(cold_cost(4, None), 24); // 4·5 + 4
        assert_eq!(cold_cost(3, None), 19); // 3·5 + 4
        assert_eq!(cold_cost(2, None), 14); // 2·5 + 4
        assert_eq!(cold_cost(4, Some(PageSize::Huge2M)), 19); // 4·4 + 3
        assert_eq!(cold_cost(3, Some(PageSize::Huge2M)), 15);
        assert_eq!(cold_cost(2, Some(PageSize::Huge2M)), 11);
        assert_eq!(cold_cost(2, Some(PageSize::Huge1G)), 8); // 2·3 + 2
    }

    #[test]
    fn cold_cost_is_monotone_under_promotion_on_either_dimension() {
        let host_sizes = [None, Some(PageSize::Huge2M), Some(PageSize::Huge1G)];
        // Promoting the guest (smaller leaf depth) at fixed host size:
        for &h in &host_sizes {
            assert!(cold_cost(4, h) >= cold_cost(3, h));
            assert!(cold_cost(3, h) >= cold_cost(2, h));
        }
        // Promoting the host at fixed guest depth:
        for leaf in 2..=4u8 {
            assert!(cold_cost(leaf, None) >= cold_cost(leaf, Some(PageSize::Huge2M)));
            assert!(
                cold_cost(leaf, Some(PageSize::Huge2M)) >= cold_cost(leaf, Some(PageSize::Huge1G))
            );
        }
    }

    #[test]
    fn warm_walk_reaches_the_floor() {
        let mut host = SimpleHost::new();
        let cfg = NestedConfig::typical();
        let mut npwc = NestedPwc::new(&cfg);
        let va = VirtAddr::new(0x4000_2000);
        let mut scratch = Vec::new();
        npwc.walk(va, 4, VirtAddr::new(0x1000), &mut host, &mut scratch)
            .unwrap();
        // Second identical walk: guest PDE hit (1 level), its PT page and
        // the data page both nTLB hits → 1 reference total.
        let refs = npwc
            .walk(va, 4, VirtAddr::new(0x1000), &mut host, &mut scratch)
            .unwrap();
        assert_eq!(refs, 1);
        assert!(scratch.is_empty(), "no host walks on an all-hit access");
        assert!(npwc.stats().ntlb_hits > 0);
    }

    #[test]
    fn host_walks_are_reported_for_pcc_feeding() {
        let mut host = SimpleHost::new();
        let mut npwc = NestedPwc::new(&NestedConfig::typical());
        let mut scratch = Vec::new();
        npwc.walk(
            VirtAddr::new(0x1000),
            4,
            VirtAddr::new(0x2000),
            &mut host,
            &mut scratch,
        )
        .unwrap();
        // Cold 4K-leaf walk: 4 table pages + 1 data page, all nTLB misses.
        assert_eq!(scratch.len(), 5);
        assert_eq!(npwc.stats().ntlb_misses, 5);
    }

    #[test]
    fn table_gpa_segments_are_disjoint_and_bounded() {
        let max_va = VirtAddr::new((1 << 48) - 1);
        let mut seen = std::collections::BTreeSet::new();
        for level in 1..=4u8 {
            let lo = table_page_gpa(level, VirtAddr::new(0));
            let hi = table_page_gpa(level, max_va);
            assert!(lo.raw() >= TABLE_GPA_BASE);
            assert!(hi.raw() < 1 << 47, "fits host table indexing");
            assert!(seen.insert(lo.raw()), "level segments must not collide");
            // Segment width stays below the 2^39 stride.
            assert!(hi.raw() - lo.raw() < 1 << 39);
        }
        // Distinct VAs in distinct tables get distinct PT-page gPAs.
        assert_ne!(
            table_page_gpa(4, VirtAddr::new(0)),
            table_page_gpa(4, VirtAddr::new(1 << 21))
        );
        // Same PT page for two VAs in one 2 MiB region.
        assert_eq!(
            table_page_gpa(4, VirtAddr::new(0x1000)),
            table_page_gpa(4, VirtAddr::new(0x2000))
        );
    }

    #[test]
    fn guest_invalidation_forces_a_refetch() {
        let mut host = SimpleHost::new();
        let mut npwc = NestedPwc::new(&NestedConfig::typical());
        let va = VirtAddr::new(0x4000_2000);
        let mut scratch = Vec::new();
        npwc.walk(va, 4, VirtAddr::new(0x1000), &mut host, &mut scratch)
            .unwrap();
        let dropped = npwc.invalidate_guest_region(va.vpn(PageSize::Huge2M));
        // PDE + covering PDPTE dropped. Guest arrays hit only at the
        // PML4E now; nTLB still warm, so 3 guest levels × 1 reference
        // each + 0 for data.
        assert_eq!(dropped, 2);
        let refs = npwc
            .walk(va, 4, VirtAddr::new(0x1000), &mut host, &mut scratch)
            .unwrap();
        assert_eq!(refs, 3);
    }

    #[test]
    fn host_invalidation_drops_ntlb_translations() {
        let mut host = SimpleHost::new();
        let mut npwc = NestedPwc::new(&NestedConfig::typical());
        let data = VirtAddr::new(0x1000);
        let mut scratch = Vec::new();
        npwc.walk(VirtAddr::new(0x4000_2000), 4, data, &mut host, &mut scratch)
            .unwrap();
        let dropped = npwc.invalidate_host_region(data.vpn(PageSize::Huge2M));
        assert!(dropped >= 1, "at least the data page's nTLB entry");
        let before = npwc.stats().ntlb_misses;
        npwc.walk(VirtAddr::new(0x4000_2000), 4, data, &mut host, &mut scratch)
            .unwrap();
        assert!(npwc.stats().ntlb_misses > before, "data page re-walked");
    }

    #[test]
    fn flush_resets_to_cold() {
        let mut host = SimpleHost::new();
        let mut npwc = NestedPwc::new(&NestedConfig::typical());
        let mut scratch = Vec::new();
        let va = VirtAddr::new(0x8000_0000);
        let cold = npwc
            .walk(va, 4, VirtAddr::new(0x1000), &mut host, &mut scratch)
            .unwrap();
        npwc.flush();
        let again = npwc
            .walk(va, 4, VirtAddr::new(0x1000), &mut host, &mut scratch)
            .unwrap();
        assert_eq!(cold, again);
        assert_eq!(cold, 24);
    }

    #[test]
    fn host_promotion_never_increases_refs() {
        // Warm up over a working set, promote a hot host region, flush
        // the caches: the cold re-walk must not cost more than the cold
        // walk did before promotion.
        let cfg = NestedConfig::typical();
        let mut host = SimpleHost::new();
        let mut npwc = NestedPwc::new(&cfg);
        let mut scratch = Vec::new();
        let va = VirtAddr::new(0x12_3456_7000);
        let data = VirtAddr::new(0x20_0000);
        let before = npwc.walk(va, 4, data, &mut host, &mut scratch).unwrap();
        host.promote_2m(data.raw() >> 21).unwrap();
        npwc.flush();
        let after = npwc.walk(va, 4, data, &mut host, &mut scratch).unwrap();
        assert!(
            after <= before,
            "promotion increased cost: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "guest leaf level")]
    fn bad_guest_leaf_panics() {
        let mut npwc = NestedPwc::new(&NestedConfig::typical());
        let mut host = SimpleHost::new();
        let mut scratch = Vec::new();
        let _ = npwc.walk(
            VirtAddr::new(0),
            5,
            VirtAddr::new(0),
            &mut host,
            &mut scratch,
        );
    }

    #[test]
    #[should_panic(expected = "walk level")]
    fn bad_table_level_panics() {
        let _ = table_page_gpa(0, VirtAddr::new(0));
    }

    proptest! {
        #[test]
        fn fast_walker_matches_reference_model(
            ops in prop::collection::vec((0u64..64, 0u8..8), 1..400),
            huge2m in prop::collection::hash_set(0u64..16, 0..8),
            huge1g in prop::collection::hash_set(0u64..2, 0..2),
        ) {
            // Small geometry so evictions actually happen.
            let cfg = NestedConfig {
                placement: hpage_types::PccPlacement::Both,
                guest_pwc: hpage_types::PwcConfig { pml4e_entries: 1, pdpte_entries: 2, pde_entries: 4 },
                host_pwc: hpage_types::PwcConfig { pml4e_entries: 1, pdpte_entries: 2, pde_entries: 4 },
                ntlb_entries: 8,
            };
            let mut fast = NestedPwc::new(&cfg);
            let mut reference = ReferenceNestedWalker::new(&cfg);
            let mut fast_host = SimpleHost::new();
            let mut ref_host = SimpleHost::new();
            for &r in &huge2m {
                fast_host.prefer_2m(r);
                ref_host.prefer_2m(r);
            }
            for &r in &huge1g {
                // Host 1G pages over the table-page segment region.
                let seg = (TABLE_GPA_BASE >> 30) + r;
                fast_host.prefer_1g(seg);
                ref_host.prefer_1g(seg);
            }
            let mut scratch = Vec::new();
            for (i, &(page, sel)) in ops.iter().enumerate() {
                let va = VirtAddr::new(page << 12 | (page & 3) << 30);
                // Guest leaf level fixed per 1 GiB VA region: a mix of
                // 4 KiB / 2 MiB / 1 GiB guest mappings.
                let leaf = match va.raw() >> 30 {
                    0 => 4,
                    1 => 3,
                    2 => 2,
                    _ => 2 + (sel % 3),
                };
                let dgpa = VirtAddr::new((page % 24) << 12);
                let f = fast.walk(va, leaf, dgpa, &mut fast_host, &mut scratch).unwrap();
                let m = reference.walk(va, leaf, dgpa, &mut ref_host).unwrap();
                prop_assert_eq!(f, m, "divergence at op {}", i);
                prop_assert!((1..=MAX_NESTED_REFS).contains(&f), "refs {} out of bounds", f);
                // Occasionally shoot down a region on both models' hosts
                // is not modelled here: invalidation equivalence is pinned
                // by the unit tests above.
            }
        }

        #[test]
        fn nested_refs_stay_in_hard_bounds(
            ops in prop::collection::vec((0u64..4096, 0u8..3), 1..300),
        ) {
            let cfg = NestedConfig::typical();
            let mut npwc = NestedPwc::new(&cfg);
            let mut host = SimpleHost::new();
            let mut scratch = Vec::new();
            for &(page, leaf_sel) in &ops {
                let va = VirtAddr::new(page << 12);
                let refs = npwc
                    .walk(va, 2 + leaf_sel, VirtAddr::new((page % 512) << 12), &mut host, &mut scratch)
                    .unwrap();
                prop_assert!((1..=MAX_NESTED_REFS).contains(&refs));
            }
            prop_assert!(npwc.stats().mean_references() >= 1.0);
            prop_assert!(npwc.stats().mean_references() <= f64::from(MAX_NESTED_REFS));
        }
    }
}
