//! A 4-level x86-64-style radix page table with per-level accessed bits.
//!
//! The model keeps only what the simulation needs: present mappings at
//! 4 KiB / 2 MiB / 1 GiB granularity, and the *accessed* bits the hardware
//! walker sets at the PUD (1 GiB) and PMD (2 MiB) levels — the bits the
//! PCC's cold-miss filter reads (steps 3 and 6 of the paper's Fig. 3).

use hpage_types::{FxHashMap, HpageError, PageSize, Pfn, VirtAddr, Vpn};

/// A resolved virtual-to-physical translation at the mapped page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Translation {
    /// The virtual page (at the mapping's page size).
    pub vpn: Vpn,
    /// The physical frame backing it.
    pub pfn: Pfn,
}

impl Translation {
    /// The page size of the mapping.
    pub fn size(&self) -> PageSize {
        self.vpn.size()
    }
}

/// Result of one hardware page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The translation found by the walk.
    pub translation: Translation,
    /// Whether the PUD-level (1 GiB region) accessed bit was already set
    /// before this walk. Drives the 1 GiB PCC's cold-miss filter.
    pub pud_accessed_before: bool,
    /// Whether the PMD-level (2 MiB region) accessed bit was already set
    /// before this walk. Drives the 2 MiB PCC's cold-miss filter. For a
    /// 1 GiB mapping there is no PMD level; the field is `false`.
    pub pmd_accessed_before: bool,
    /// Number of page-table levels the walker had to reference
    /// (2 for a 1 GiB leaf at the PUD, 3 for a 2 MiB leaf at the PMD,
    /// 4 for a 4 KiB leaf at the PTE — counting from the PGD).
    pub levels_referenced: u8,
}

#[derive(Debug, Clone)]
struct PudEntry {
    accessed: bool,
    kind: PudKind,
}

#[derive(Debug, Clone)]
enum PudKind {
    /// 1 GiB leaf mapping.
    Huge1G(Pfn),
    /// Points to a table of the 512 PMDs covering this 1 GiB region.
    Table(PmdDir),
}

/// The 512-entry PMD directory of one PUD: a real page table is an
/// array indexed by 9 address bits, and modeling it as one keeps the
/// per-walk level references O(1) with no hashing — the hardware-walk
/// hot path the simulator spends most of its time in.
#[derive(Debug, Clone)]
struct PmdDir {
    slots: Box<[Option<PmdEntry>]>,
    live: u32,
}

impl PmdDir {
    fn new() -> Self {
        PmdDir {
            slots: vec![None; ENTRIES_PER_TABLE].into_boxed_slice(),
            live: 0,
        }
    }

    /// Slot for a *global* 2 MiB region index (low 9 bits).
    fn slot_of(idx: u64) -> usize {
        (idx & (ENTRIES_PER_TABLE as u64 - 1)) as usize
    }

    fn get(&self, idx: u64) -> Option<&PmdEntry> {
        self.slots[Self::slot_of(idx)].as_ref()
    }

    fn get_mut(&mut self, idx: u64) -> Option<&mut PmdEntry> {
        self.slots[Self::slot_of(idx)].as_mut()
    }

    fn insert(&mut self, idx: u64, entry: PmdEntry) -> Option<PmdEntry> {
        let old = self.slots[Self::slot_of(idx)].replace(entry);
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    fn remove(&mut self, idx: u64) -> Option<PmdEntry> {
        let old = self.slots[Self::slot_of(idx)].take();
        if old.is_some() {
            self.live -= 1;
        }
        old
    }

    fn or_insert_with(&mut self, idx: u64, default: impl FnOnce() -> PmdEntry) -> &mut PmdEntry {
        let slot = &mut self.slots[Self::slot_of(idx)];
        if slot.is_none() {
            *slot = Some(default());
            self.live += 1;
        }
        slot.as_mut().expect("just filled")
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn values(&self) -> impl Iterator<Item = &PmdEntry> {
        self.slots.iter().flatten()
    }

    /// Present entries as (local slot, entry) pairs, ascending.
    fn entries(&self) -> impl Iterator<Item = (usize, &PmdEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
    }
}

#[derive(Debug, Clone)]
struct PmdEntry {
    accessed: bool,
    kind: PmdKind,
}

#[derive(Debug, Clone)]
enum PmdKind {
    /// 2 MiB leaf mapping.
    Huge2M(Pfn),
    /// Points to the 512-entry PTE table of this 2 MiB region.
    Table(PteTable),
}

/// Entries per page-table level on x86-64 (9 index bits).
const ENTRIES_PER_TABLE: usize = 512;

/// Present bit of a packed PTE word.
const PTE_PRESENT: u64 = 1;
/// Accessed bit of a packed PTE word.
const PTE_ACCESSED: u64 = 1 << 1;
/// Shift of the frame index in a packed PTE word.
const PTE_PFN_SHIFT: u32 = 2;

/// The 512-entry PTE table of one PMD, indexed by the low 9 bits of
/// the global 4 KiB page index.
///
/// Entries are packed like hardware PTEs: one `u64` word per slot
/// (present bit, accessed bit, frame index), so a full table is a
/// single 4 KiB array — the walker's leaf reference is one word
/// load/store, and the whole level stays three times denser in the
/// host cache than a `[Option<struct>; 512]` layout. A PTE always maps
/// a 4 KiB frame, so the frame's page size needs no bits.
#[derive(Debug, Clone)]
struct PteTable {
    slots: Box<[u64; ENTRIES_PER_TABLE]>,
    live: u32,
}

impl PteTable {
    fn new() -> Self {
        PteTable {
            slots: Box::new([0; ENTRIES_PER_TABLE]),
            live: 0,
        }
    }

    fn slot_of(idx: u64) -> usize {
        (idx & (ENTRIES_PER_TABLE as u64 - 1)) as usize
    }

    fn pack(pfn: Pfn, accessed: bool) -> u64 {
        debug_assert_eq!(pfn.size(), PageSize::Base4K);
        (pfn.index() << PTE_PFN_SHIFT) | PTE_PRESENT | if accessed { PTE_ACCESSED } else { 0 }
    }

    fn unpack_pfn(word: u64) -> Pfn {
        Pfn::new(word >> PTE_PFN_SHIFT, PageSize::Base4K)
    }

    fn word(&self, idx: u64) -> u64 {
        self.slots[Self::slot_of(idx)]
    }

    fn word_mut(&mut self, idx: u64) -> &mut u64 {
        &mut self.slots[Self::slot_of(idx)]
    }

    /// Installs a mapping; returns `true` if the slot was empty.
    fn insert(&mut self, idx: u64, pfn: Pfn, accessed: bool) -> bool {
        let slot = self.word_mut(idx);
        let was_empty = *slot & PTE_PRESENT == 0;
        *slot = Self::pack(pfn, accessed);
        if was_empty {
            self.live += 1;
        }
        was_empty
    }

    fn remove(&mut self, idx: u64) -> Option<Pfn> {
        let slot = self.word_mut(idx);
        if *slot & PTE_PRESENT == 0 {
            return None;
        }
        let pfn = Self::unpack_pfn(*slot);
        *slot = 0;
        self.live -= 1;
        Some(pfn)
    }

    fn len(&self) -> usize {
        self.live as usize
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn pfns(&self) -> impl Iterator<Item = Pfn> + '_ {
        self.slots
            .iter()
            .filter(|&&w| w & PTE_PRESENT != 0)
            .map(|&w| Self::unpack_pfn(w))
    }

    fn accessed_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|&&w| w & (PTE_PRESENT | PTE_ACCESSED) == (PTE_PRESENT | PTE_ACCESSED))
            .count()
    }

    fn clear_accessed(&mut self) {
        for w in self.slots.iter_mut() {
            *w &= !PTE_ACCESSED;
        }
    }
}

/// A process's page table.
///
/// Mappings can be installed at any of the three page sizes;
/// [`promote_2m`](Self::promote_2m) and [`demote_2m`](Self::demote_2m)
/// implement the remappings the OS performs during huge page promotion
/// and demotion.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Keys are global 1 GiB region indices.
    puds: FxHashMap<u64, PudEntry>,
    walks: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Total hardware walks performed against this table.
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Installs a mapping of `vpn` to `pfn` (page sizes must match).
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvalidRemap`] if the sizes differ or any part
    /// of the region is already mapped.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn) -> Result<(), HpageError> {
        if vpn.size() != pfn.size() {
            return Err(HpageError::InvalidRemap {
                reason: format!("vpn size {} != pfn size {}", vpn.size(), pfn.size()),
            });
        }
        if self.translate(vpn.base()).is_some() {
            return Err(HpageError::InvalidRemap {
                reason: format!("{vpn} is already mapped"),
            });
        }
        let pud_idx = vpn.containing(PageSize::Huge1G).index();
        match vpn.size() {
            PageSize::Huge1G => {
                if self.puds.contains_key(&pud_idx) {
                    return Err(HpageError::InvalidRemap {
                        reason: format!("{vpn} overlaps existing mappings"),
                    });
                }
                self.puds.insert(
                    pud_idx,
                    PudEntry {
                        accessed: false,
                        kind: PudKind::Huge1G(pfn),
                    },
                );
            }
            PageSize::Huge2M => {
                let pud = self.pud_table(pud_idx)?;
                if pud.get(vpn.index()).is_some() {
                    return Err(HpageError::InvalidRemap {
                        reason: format!("{vpn} overlaps existing base mappings"),
                    });
                }
                pud.insert(
                    vpn.index(),
                    PmdEntry {
                        accessed: false,
                        kind: PmdKind::Huge2M(pfn),
                    },
                );
            }
            PageSize::Base4K => {
                let pmd_idx = vpn.containing(PageSize::Huge2M).index();
                let pud = self.pud_table(pud_idx)?;
                let pmd = pud.or_insert_with(pmd_idx, || PmdEntry {
                    accessed: false,
                    kind: PmdKind::Table(PteTable::new()),
                });
                match &mut pmd.kind {
                    PmdKind::Table(ptes) => {
                        ptes.insert(vpn.index(), pfn, false);
                    }
                    PmdKind::Huge2M(_) => {
                        return Err(HpageError::InvalidRemap {
                            reason: format!("{vpn} lies inside an existing 2MB mapping"),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    fn pud_table(&mut self, pud_idx: u64) -> Result<&mut PmdDir, HpageError> {
        let pud = self.puds.entry(pud_idx).or_insert_with(|| PudEntry {
            accessed: false,
            kind: PudKind::Table(PmdDir::new()),
        });
        match &mut pud.kind {
            PudKind::Table(t) => Ok(t),
            PudKind::Huge1G(_) => Err(HpageError::InvalidRemap {
                reason: "region lies inside an existing 1GB mapping".into(),
            }),
        }
    }

    /// Removes the mapping containing `vpn.base()` at exactly `vpn`'s size.
    /// Returns the physical frame it pointed to.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::Unmapped`] if no mapping of that size covers
    /// the address.
    pub fn unmap(&mut self, vpn: Vpn) -> Result<Pfn, HpageError> {
        let err = || HpageError::Unmapped {
            addr: vpn.base().raw(),
        };
        let pud_idx = vpn.containing(PageSize::Huge1G).index();
        match vpn.size() {
            PageSize::Huge1G => match self.puds.remove(&pud_idx) {
                Some(PudEntry {
                    kind: PudKind::Huge1G(pfn),
                    ..
                }) => Ok(pfn),
                Some(other) => {
                    self.puds.insert(pud_idx, other);
                    Err(err())
                }
                None => Err(err()),
            },
            PageSize::Huge2M => {
                let pud = self.puds.get_mut(&pud_idx).ok_or_else(err)?;
                let PudKind::Table(pmds) = &mut pud.kind else {
                    return Err(err());
                };
                match pmds.remove(vpn.index()) {
                    Some(PmdEntry {
                        kind: PmdKind::Huge2M(pfn),
                        ..
                    }) => Ok(pfn),
                    Some(other) => {
                        pmds.insert(vpn.index(), other);
                        Err(err())
                    }
                    None => Err(err()),
                }
            }
            PageSize::Base4K => {
                let pmd_idx = vpn.containing(PageSize::Huge2M).index();
                let pud = self.puds.get_mut(&pud_idx).ok_or_else(err)?;
                let PudKind::Table(pmds) = &mut pud.kind else {
                    return Err(err());
                };
                let pmd = pmds.get_mut(pmd_idx).ok_or_else(err)?;
                let PmdKind::Table(ptes) = &mut pmd.kind else {
                    return Err(err());
                };
                ptes.remove(vpn.index()).ok_or_else(err)
            }
        }
    }

    /// Resolves `va` without touching accessed bits (an "OS peek", unlike
    /// the hardware [`walk`](Self::walk)).
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        let pud_idx = va.vpn(PageSize::Huge1G).index();
        let pud = self.puds.get(&pud_idx)?;
        match &pud.kind {
            PudKind::Huge1G(pfn) => Some(Translation {
                vpn: va.vpn(PageSize::Huge1G),
                pfn: *pfn,
            }),
            PudKind::Table(pmds) => {
                let pmd_idx = va.vpn(PageSize::Huge2M).index();
                let pmd = pmds.get(pmd_idx)?;
                match &pmd.kind {
                    PmdKind::Huge2M(pfn) => Some(Translation {
                        vpn: va.vpn(PageSize::Huge2M),
                        pfn: *pfn,
                    }),
                    PmdKind::Table(ptes) => {
                        let w = ptes.word(va.vpn(PageSize::Base4K).index());
                        (w & PTE_PRESENT != 0).then(|| Translation {
                            vpn: va.vpn(PageSize::Base4K),
                            pfn: PteTable::unpack_pfn(w),
                        })
                    }
                }
            }
        }
    }

    /// The page size of the mapping covering `va`, if any.
    pub fn mapping_size(&self, va: VirtAddr) -> Option<PageSize> {
        self.translate(va).map(|t| t.size())
    }

    /// Performs a hardware page-table walk for `va`: resolves the
    /// translation, reports the prior state of the PUD/PMD accessed bits,
    /// and sets every accessed bit on the walked path (Intel semantics:
    /// the walker sets A-bits at each level it references).
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::Unmapped`] for an unmapped address (a page
    /// fault in the real system; the OS layer handles it and retries).
    pub fn walk(&mut self, va: VirtAddr) -> Result<WalkResult, HpageError> {
        let err = || HpageError::Unmapped { addr: va.raw() };
        let pud_idx = va.vpn(PageSize::Huge1G).index();
        let pud = self.puds.get_mut(&pud_idx).ok_or_else(err)?;
        let pud_accessed_before = pud.accessed;
        match &mut pud.kind {
            PudKind::Huge1G(pfn) => {
                let pfn = *pfn;
                pud.accessed = true;
                self.walks += 1;
                Ok(WalkResult {
                    translation: Translation {
                        vpn: va.vpn(PageSize::Huge1G),
                        pfn,
                    },
                    pud_accessed_before,
                    pmd_accessed_before: false,
                    levels_referenced: 2,
                })
            }
            PudKind::Table(pmds) => {
                let pmd_idx = va.vpn(PageSize::Huge2M).index();
                let pmd = pmds.get_mut(pmd_idx).ok_or_else(err)?;
                let pmd_accessed_before = pmd.accessed;
                let result = match &mut pmd.kind {
                    PmdKind::Huge2M(pfn) => WalkResult {
                        translation: Translation {
                            vpn: va.vpn(PageSize::Huge2M),
                            pfn: *pfn,
                        },
                        pud_accessed_before,
                        pmd_accessed_before,
                        levels_referenced: 3,
                    },
                    PmdKind::Table(ptes) => {
                        let w = ptes.word_mut(va.vpn(PageSize::Base4K).index());
                        if *w & PTE_PRESENT == 0 {
                            return Err(err());
                        }
                        *w |= PTE_ACCESSED;
                        WalkResult {
                            translation: Translation {
                                vpn: va.vpn(PageSize::Base4K),
                                pfn: PteTable::unpack_pfn(*w),
                            },
                            pud_accessed_before,
                            pmd_accessed_before,
                            levels_referenced: 4,
                        }
                    }
                };
                pmd.accessed = true;
                pud.accessed = true;
                self.walks += 1;
                Ok(result)
            }
        }
    }

    /// Replaces the 4 KiB mappings of a fully- or partially-mapped 2 MiB
    /// region with a single 2 MiB leaf pointing at `new_pfn` — the page
    /// table side of huge page promotion. Returns the base-page frames
    /// that were unmapped (the OS copies their data into the huge frame).
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvalidRemap`] if the region is already huge
    /// or [`HpageError::Unmapped`] if no base page in it is mapped.
    pub fn promote_2m(&mut self, region: Vpn, new_pfn: Pfn) -> Result<Vec<Pfn>, HpageError> {
        if region.size() != PageSize::Huge2M || new_pfn.size() != PageSize::Huge2M {
            return Err(HpageError::InvalidRemap {
                reason: "promote_2m requires 2MB vpn and pfn".into(),
            });
        }
        let pud_idx = region.containing(PageSize::Huge1G).index();
        let pud = self.puds.get_mut(&pud_idx).ok_or(HpageError::Unmapped {
            addr: region.base().raw(),
        })?;
        let PudKind::Table(pmds) = &mut pud.kind else {
            return Err(HpageError::InvalidRemap {
                reason: "region lies inside a 1GB mapping".into(),
            });
        };
        let pmd = pmds.get_mut(region.index()).ok_or(HpageError::Unmapped {
            addr: region.base().raw(),
        })?;
        match &mut pmd.kind {
            PmdKind::Huge2M(_) => Err(HpageError::InvalidRemap {
                reason: format!("{region} is already a huge page"),
            }),
            PmdKind::Table(ptes) => {
                if ptes.is_empty() {
                    return Err(HpageError::Unmapped {
                        addr: region.base().raw(),
                    });
                }
                let old: Vec<Pfn> = ptes.pfns().collect();
                pmd.kind = PmdKind::Huge2M(new_pfn);
                pmd.accessed = false; // fresh leaf: hardware will set it
                Ok(old)
            }
        }
    }

    /// Replaces everything mapped inside a 1 GiB region with a single
    /// PUD leaf pointing at `new_pfn` — the page-table side of 1 GiB
    /// promotion (§3.2.3: a candidate comprising both 4 KiB and 2 MiB
    /// mappings is collectively promoted). Returns the base frames and
    /// 2 MiB frames that were unmapped.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvalidRemap`] on size mismatches or if the
    /// region is already a 1 GiB leaf, and [`HpageError::Unmapped`] if
    /// nothing is mapped inside the region.
    pub fn promote_1g(
        &mut self,
        region: Vpn,
        new_pfn: Pfn,
    ) -> Result<(Vec<Pfn>, Vec<Pfn>), HpageError> {
        if region.size() != PageSize::Huge1G || new_pfn.size() != PageSize::Huge1G {
            return Err(HpageError::InvalidRemap {
                reason: "promote_1g requires 1GB vpn and pfn".into(),
            });
        }
        let Some(pud) = self.puds.get(&region.index()) else {
            return Err(HpageError::Unmapped {
                addr: region.base().raw(),
            });
        };
        let PudKind::Table(pmds) = &pud.kind else {
            return Err(HpageError::InvalidRemap {
                reason: format!("{region} is already a 1GB page"),
            });
        };
        if pmds.is_empty() {
            return Err(HpageError::Unmapped {
                addr: region.base().raw(),
            });
        }
        let mut base_frames = Vec::new();
        let mut huge_frames = Vec::new();
        for pmd in pmds.values() {
            match &pmd.kind {
                PmdKind::Huge2M(pfn) => huge_frames.push(*pfn),
                PmdKind::Table(ptes) => base_frames.extend(ptes.pfns()),
            }
        }
        self.puds.insert(
            region.index(),
            PudEntry {
                accessed: false,
                kind: PudKind::Huge1G(new_pfn),
            },
        );
        Ok((base_frames, huge_frames))
    }

    /// Splits a 2 MiB huge mapping back into 512 base-page mappings onto
    /// `base_pfns` — the page table side of huge page demotion. Returns
    /// the huge frame that was unmapped.
    ///
    /// # Errors
    ///
    /// Returns [`HpageError::InvalidRemap`] if `base_pfns` is not 512
    /// 4 KiB frames, or [`HpageError::Unmapped`] if the region is not a
    /// huge mapping.
    pub fn demote_2m(&mut self, region: Vpn, base_pfns: &[Pfn]) -> Result<Pfn, HpageError> {
        if region.size() != PageSize::Huge2M {
            return Err(HpageError::InvalidRemap {
                reason: "demote_2m requires a 2MB vpn".into(),
            });
        }
        if base_pfns.len() != 512 || base_pfns.iter().any(|p| p.size() != PageSize::Base4K) {
            return Err(HpageError::InvalidRemap {
                reason: "demote_2m requires exactly 512 4KB pfns".into(),
            });
        }
        let pud_idx = region.containing(PageSize::Huge1G).index();
        let pud = self.puds.get_mut(&pud_idx).ok_or(HpageError::Unmapped {
            addr: region.base().raw(),
        })?;
        let PudKind::Table(pmds) = &mut pud.kind else {
            return Err(HpageError::InvalidRemap {
                reason: "region lies inside a 1GB mapping".into(),
            });
        };
        let pmd = pmds.get_mut(region.index()).ok_or(HpageError::Unmapped {
            addr: region.base().raw(),
        })?;
        let PmdKind::Huge2M(huge_pfn) = pmd.kind else {
            return Err(HpageError::Unmapped {
                addr: region.base().raw(),
            });
        };
        let mut ptes = PteTable::new();
        for (vpn, pfn) in region.split(PageSize::Base4K).zip(base_pfns.iter()) {
            ptes.insert(vpn.index(), *pfn, false);
        }
        pmd.kind = PmdKind::Table(ptes);
        pmd.accessed = false;
        Ok(huge_pfn)
    }

    /// Number of mapped 4 KiB pages inside a 2 MiB region (512 if the
    /// region is a huge mapping). Used by utilization-based policies
    /// (khugepaged, HawkEye).
    pub fn mapped_base_pages_in(&self, region: Vpn) -> u64 {
        assert_eq!(region.size(), PageSize::Huge2M);
        let pud_idx = region.containing(PageSize::Huge1G).index();
        match self.puds.get(&pud_idx).map(|p| &p.kind) {
            Some(PudKind::Huge1G(_)) => 512,
            Some(PudKind::Table(pmds)) => match pmds.get(region.index()).map(|p| &p.kind) {
                Some(PmdKind::Huge2M(_)) => 512,
                Some(PmdKind::Table(ptes)) => ptes.len() as u64,
                None => 0,
            },
            None => 0,
        }
    }

    /// Number of 4 KiB pages in `region` whose PTE accessed bit is set —
    /// HawkEye's *access coverage* metric for one huge page region.
    pub fn accessed_base_pages_in(&self, region: Vpn) -> u64 {
        assert_eq!(region.size(), PageSize::Huge2M);
        let pud_idx = region.containing(PageSize::Huge1G).index();
        match self.puds.get(&pud_idx).map(|p| &p.kind) {
            Some(PudKind::Huge1G(_)) => 512,
            Some(PudKind::Table(pmds)) => match pmds.get(region.index()).map(|p| &p.kind) {
                Some(PmdKind::Huge2M(e)) => {
                    let _ = e;
                    // For a huge leaf, coverage is its own A-bit times 512.
                    if pmds.get(region.index()).map(|p| p.accessed) == Some(true) {
                        512
                    } else {
                        0
                    }
                }
                Some(PmdKind::Table(ptes)) => ptes.accessed_count() as u64,
                None => 0,
            },
            None => 0,
        }
    }

    /// Clears the PTE accessed bits of every 4 KiB page inside `region`
    /// (software scanners reset A-bits between measurement intervals).
    pub fn clear_accessed_in(&mut self, region: Vpn) {
        assert_eq!(region.size(), PageSize::Huge2M);
        let pud_idx = region.containing(PageSize::Huge1G).index();
        if let Some(pud) = self.puds.get_mut(&pud_idx) {
            if let PudKind::Table(pmds) = &mut pud.kind {
                if let Some(pmd) = pmds.get_mut(region.index()) {
                    pmd.accessed = false;
                    if let PmdKind::Table(ptes) = &mut pmd.kind {
                        ptes.clear_accessed();
                    }
                }
            }
        }
    }

    /// Iterates over every 2 MiB region that currently has at least one
    /// mapping (huge or base), in ascending region order. This is the VMA
    /// scan order khugepaged and HawkEye traverse.
    pub fn mapped_2m_regions(&self) -> Vec<Vpn> {
        let mut regions: Vec<Vpn> = Vec::new();
        for (pud_idx, pud) in &self.puds {
            match &pud.kind {
                PudKind::Huge1G(_) => {
                    regions.extend(Vpn::new(*pud_idx, PageSize::Huge1G).split(PageSize::Huge2M));
                }
                PudKind::Table(pmds) => {
                    regions.extend(
                        pmds.entries().map(|(slot, _)| {
                            Vpn::new(pud_idx * 512 + slot as u64, PageSize::Huge2M)
                        }),
                    );
                }
            }
        }
        regions.sort_by_key(|v| v.index());
        regions
    }

    /// Whether the mapping covering `region` is a 2 MiB (or larger) leaf.
    pub fn is_huge_mapped(&self, region: Vpn) -> bool {
        assert_eq!(region.size(), PageSize::Huge2M);
        matches!(
            self.mapping_size(region.base()),
            Some(PageSize::Huge2M) | Some(PageSize::Huge1G)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4k(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Base4K)
    }
    fn p4k(i: u64) -> Pfn {
        Pfn::new(i, PageSize::Base4K)
    }
    fn v2m(i: u64) -> Vpn {
        Vpn::new(i, PageSize::Huge2M)
    }
    fn p2m(i: u64) -> Pfn {
        Pfn::new(i, PageSize::Huge2M)
    }

    #[test]
    fn map_translate_roundtrip_all_sizes() {
        let mut pt = PageTable::new();
        pt.map(v4k(5), p4k(50)).unwrap();
        pt.map(v2m(1000), p2m(99)).unwrap();
        pt.map(Vpn::new(3, PageSize::Huge1G), Pfn::new(2, PageSize::Huge1G))
            .unwrap();

        let t = pt.translate(v4k(5).base()).unwrap();
        assert_eq!(t.pfn, p4k(50));
        assert_eq!(t.size(), PageSize::Base4K);

        let t = pt.translate(v2m(1000).base().offset(0x12345)).unwrap();
        assert_eq!(t.pfn, p2m(99));
        assert_eq!(t.size(), PageSize::Huge2M);

        let t = pt
            .translate(VirtAddr::new(3 << 30).offset(123 << 12))
            .unwrap();
        assert_eq!(t.size(), PageSize::Huge1G);
    }

    #[test]
    fn translate_unmapped_is_none() {
        let pt = PageTable::new();
        assert!(pt.translate(VirtAddr::new(0x1000)).is_none());
        assert!(pt.mapping_size(VirtAddr::new(0x1000)).is_none());
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        pt.map(v4k(5), p4k(50)).unwrap();
        assert!(pt.map(v4k(5), p4k(51)).is_err());
        // 2MB over existing 4K in the same region also rejected.
        let region = v4k(5).containing(PageSize::Huge2M);
        assert!(pt.map(region, p2m(7)).is_err());
        // 4K inside an existing 2MB mapping rejected.
        pt.map(v2m(1000), p2m(99)).unwrap();
        let inner = v2m(1000).split(PageSize::Base4K).nth(3).unwrap();
        assert!(pt.map(inner, p4k(1)).is_err());
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut pt = PageTable::new();
        assert!(pt.map(v4k(1), p2m(1)).is_err());
    }

    #[test]
    fn walk_sets_and_reports_access_bits() {
        let mut pt = PageTable::new();
        pt.map(v4k(0x200), p4k(1)).unwrap(); // inside 2MB region 1
        let va = v4k(0x200).base();

        let w1 = pt.walk(va).unwrap();
        assert!(!w1.pmd_accessed_before);
        assert!(!w1.pud_accessed_before);
        assert_eq!(w1.levels_referenced, 4);

        let w2 = pt.walk(va).unwrap();
        assert!(w2.pmd_accessed_before);
        assert!(w2.pud_accessed_before);
        assert_eq!(pt.walk_count(), 2);
    }

    #[test]
    fn pmd_access_bit_shared_within_region() {
        let mut pt = PageTable::new();
        // Two different base pages in the same 2MB region.
        pt.map(v4k(0x200), p4k(1)).unwrap();
        pt.map(v4k(0x201), p4k(2)).unwrap();
        pt.walk(v4k(0x200).base()).unwrap();
        // The sibling page's walk sees the PMD bit already set: this is
        // exactly what lets the PCC admit the region as warm.
        let w = pt.walk(v4k(0x201).base()).unwrap();
        assert!(w.pmd_accessed_before);
    }

    #[test]
    fn walk_2m_leaf_reports_three_levels() {
        let mut pt = PageTable::new();
        pt.map(v2m(4), p2m(9)).unwrap();
        let w = pt.walk(v2m(4).base().offset(0x1234)).unwrap();
        assert_eq!(w.levels_referenced, 3);
        assert_eq!(w.translation.size(), PageSize::Huge2M);
        assert!(!w.pmd_accessed_before);
        let w2 = pt.walk(v2m(4).base()).unwrap();
        assert!(w2.pmd_accessed_before);
    }

    #[test]
    fn walk_1g_leaf_reports_two_levels() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(2, PageSize::Huge1G), Pfn::new(5, PageSize::Huge1G))
            .unwrap();
        let w = pt.walk(VirtAddr::new(2 << 30)).unwrap();
        assert_eq!(w.levels_referenced, 2);
        assert!(!w.pud_accessed_before);
        let w2 = pt.walk(VirtAddr::new((2 << 30) + 4096)).unwrap();
        assert!(w2.pud_accessed_before);
    }

    #[test]
    fn walk_unmapped_errors() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.walk(VirtAddr::new(0x5000)),
            Err(HpageError::Unmapped { addr: 0x5000 })
        ));
    }

    #[test]
    fn promote_replaces_base_pages() {
        let mut pt = PageTable::new();
        let region = v2m(3);
        let pages: Vec<Vpn> = region.split(PageSize::Base4K).collect();
        for (i, page) in pages.iter().enumerate().take(10) {
            pt.map(*page, p4k(100 + i as u64)).unwrap();
        }
        let old = pt.promote_2m(region, p2m(77)).unwrap();
        assert_eq!(old.len(), 10);
        assert!(pt.is_huge_mapped(region));
        // All 512 pages now translate via the huge leaf.
        for page in &pages {
            let t = pt.translate(page.base()).unwrap();
            assert_eq!(t.size(), PageSize::Huge2M);
            assert_eq!(t.pfn, p2m(77));
        }
    }

    #[test]
    fn promote_rejects_empty_or_huge() {
        let mut pt = PageTable::new();
        assert!(pt.promote_2m(v2m(3), p2m(1)).is_err()); // nothing mapped
        pt.map(v2m(3), p2m(1)).unwrap();
        assert!(pt.promote_2m(v2m(3), p2m(2)).is_err()); // already huge
    }

    #[test]
    fn demote_splits_huge_page() {
        let mut pt = PageTable::new();
        pt.map(v2m(3), p2m(7)).unwrap();
        let frames: Vec<Pfn> = (0..512).map(p4k).collect();
        let huge = pt.demote_2m(v2m(3), &frames).unwrap();
        assert_eq!(huge, p2m(7));
        assert!(!pt.is_huge_mapped(v2m(3)));
        assert_eq!(pt.mapped_base_pages_in(v2m(3)), 512);
        let t = pt.translate(v2m(3).base().offset(5 << 12)).unwrap();
        assert_eq!(t.pfn, p4k(5));
    }

    #[test]
    fn demote_validates_inputs() {
        let mut pt = PageTable::new();
        pt.map(v2m(3), p2m(7)).unwrap();
        assert!(pt.demote_2m(v2m(3), &[p4k(0); 10]).is_err());
        assert!(pt.demote_2m(v2m(4), &vec![p4k(0); 512]).is_err());
    }

    #[test]
    fn promote_demote_roundtrip() {
        let mut pt = PageTable::new();
        let region = v2m(3);
        for (i, page) in region.split(PageSize::Base4K).enumerate() {
            pt.map(page, p4k(i as u64)).unwrap();
        }
        pt.promote_2m(region, p2m(9)).unwrap();
        let frames: Vec<Pfn> = (0..512).map(p4k).collect();
        pt.demote_2m(region, &frames).unwrap();
        assert_eq!(pt.mapped_base_pages_in(region), 512);
        pt.promote_2m(region, p2m(10)).unwrap();
        assert!(pt.is_huge_mapped(region));
    }

    #[test]
    fn coverage_counts_accessed_pages() {
        let mut pt = PageTable::new();
        let region = v2m(3);
        let pages: Vec<Vpn> = region.split(PageSize::Base4K).take(8).collect();
        for (i, page) in pages.iter().enumerate() {
            pt.map(*page, p4k(i as u64)).unwrap();
        }
        assert_eq!(pt.accessed_base_pages_in(region), 0);
        pt.walk(pages[0].base()).unwrap();
        pt.walk(pages[3].base()).unwrap();
        assert_eq!(pt.accessed_base_pages_in(region), 2);
        assert_eq!(pt.mapped_base_pages_in(region), 8);
        pt.clear_accessed_in(region);
        assert_eq!(pt.accessed_base_pages_in(region), 0);
        // Clearing also resets the PMD bit (next walk is "cold" again).
        let w = pt.walk(pages[0].base()).unwrap();
        assert!(!w.pmd_accessed_before);
    }

    #[test]
    fn mapped_regions_sorted() {
        let mut pt = PageTable::new();
        pt.map(v2m(9), p2m(1)).unwrap();
        pt.map(v4k(0x200), p4k(1)).unwrap(); // region 1
        pt.map(v2m(4), p2m(2)).unwrap();
        let regions = pt.mapped_2m_regions();
        assert_eq!(
            regions.iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![1, 4, 9]
        );
    }

    #[test]
    fn promote_1g_collapses_mixed_mappings() {
        let mut pt = PageTable::new();
        let giant = Vpn::new(2, PageSize::Huge1G);
        let subregions: Vec<Vpn> = giant.split(PageSize::Huge2M).collect();
        // Mixed state: one 2MB leaf + a few base pages elsewhere.
        pt.map(subregions[0], p2m(40)).unwrap();
        for (i, page) in subregions[3].split(PageSize::Base4K).take(5).enumerate() {
            pt.map(page, p4k(50 + i as u64)).unwrap();
        }
        let (bases, huges) = pt.promote_1g(giant, Pfn::new(9, PageSize::Huge1G)).unwrap();
        assert_eq!(bases.len(), 5);
        assert_eq!(huges, vec![p2m(40)]);
        // Every address in the gigabyte now translates via the PUD leaf.
        let t = pt.translate(subregions[100].base()).unwrap();
        assert_eq!(t.size(), PageSize::Huge1G);
        // Re-promotion fails (already 1GB).
        assert!(pt
            .promote_1g(giant, Pfn::new(10, PageSize::Huge1G))
            .is_err());
        // Empty region fails.
        assert!(pt
            .promote_1g(Vpn::new(7, PageSize::Huge1G), Pfn::new(1, PageSize::Huge1G))
            .is_err());
    }

    #[test]
    fn unmap_all_sizes() {
        let mut pt = PageTable::new();
        pt.map(v4k(5), p4k(50)).unwrap();
        assert_eq!(pt.unmap(v4k(5)).unwrap(), p4k(50));
        assert!(pt.translate(v4k(5).base()).is_none());
        assert!(pt.unmap(v4k(5)).is_err());

        pt.map(v2m(8), p2m(3)).unwrap();
        assert_eq!(pt.unmap(v2m(8)).unwrap(), p2m(3));

        let g = Vpn::new(1, PageSize::Huge1G);
        pt.map(g, Pfn::new(1, PageSize::Huge1G)).unwrap();
        assert_eq!(pt.unmap(g).unwrap(), Pfn::new(1, PageSize::Huge1G));
    }

    #[test]
    fn unmap_wrong_size_keeps_mapping() {
        let mut pt = PageTable::new();
        pt.map(v2m(8), p2m(3)).unwrap();
        // Unmapping at 4K size fails and must not destroy the 2MB leaf.
        let inner = v2m(8).split(PageSize::Base4K).next().unwrap();
        assert!(pt.unmap(inner).is_err());
        assert!(pt.is_huge_mapped(v2m(8)));
    }
}
