//! Functional simulator of a core's virtual-memory translation hardware:
//! a split-size L1 data TLB, a unified L2 TLB, and a 4-level x86-64 radix
//! page table with per-level *accessed* bits walked by a hardware page
//! table walker.
//!
//! This is the substrate the PCC (in `hpage-pcc`) plugs into: the walker
//! reports, for every page-table walk, whether the PUD (1 GiB) and PMD
//! (2 MiB) accessed bits covering the address were already set — the
//! signal the PCC's cold-miss filter uses (Fig. 3 of the paper).
//!
//! The model is *functional*, not cycle-accurate: it counts hits, misses
//! and walks; `hpage-perf` converts those counts into time.
//!
//! # Example
//!
//! ```
//! use hpage_tlb::{PageTable, TlbHierarchy, TlbOutcome};
//! use hpage_types::{PageSize, Pfn, TlbConfig, VirtAddr};
//!
//! let mut pt = PageTable::new();
//! let va = VirtAddr::new(0x20_0000);
//! pt.map(va.vpn(PageSize::Base4K), Pfn::new(7, PageSize::Base4K))?;
//!
//! let mut tlb = TlbHierarchy::new(TlbConfig::paper());
//! assert_eq!(tlb.lookup(va), TlbOutcome::Miss);          // cold TLB
//! let walk = pt.walk(va)?;                                // hardware walk
//! assert!(!walk.pmd_accessed_before);                     // first touch
//! tlb.fill(walk.translation);
//! assert_eq!(tlb.lookup(va), TlbOutcome::L1Hit(walk.translation));
//! # Ok::<(), hpage_types::HpageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
pub mod nested;
mod pwc;
mod table;
mod tlb;

pub use hierarchy::{TlbHierarchy, TlbHierarchyStats, TlbOutcome};
pub use nested::{
    data_gpa, table_page_gpa, HostSpace, NestedPwc, NestedPwcStats, ReferenceNestedWalker,
    SimpleHost, MAX_NESTED_REFS, TABLE_GPA_BASE,
};
pub use pwc::{PageWalkCache, PwcStats};
pub use table::{PageTable, Translation, WalkResult};
pub use tlb::{SetAssocTlb, TlbStats};
