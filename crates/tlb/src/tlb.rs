//! A set-associative TLB with LRU replacement.

use crate::table::Translation;
use hpage_types::{PageSize, Pfn, TlbLevelConfig, VirtAddr, Vpn};

/// Hit/miss counters for one TLB structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that found no matching entry.
    pub misses: u64,
    /// Entries displaced by fills into full sets.
    pub evictions: u64,
    /// Entries removed by invalidations (shootdowns).
    pub invalidations: u64,
}

impl TlbStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no lookups.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }
}

/// One resident entry, packed to 16 bytes so an LRU scan over a
/// 12-way set reads three cache lines instead of the nine a struct
/// with unpacked [`Translation`]s would span. The entry's VPN lives in
/// the parallel `keys` slab ([`vpn_key`]); the slot keeps only the
/// packed PFN ([`pfn_key`]) and its recency stamp.
///
/// LRU ties on `last_used` resolve to the lowest slot position, and
/// removal compacts order-preservingly ([`SetAssocTlb::remove_at`]),
/// so position order *is* insertion order: ties evict the
/// earliest-inserted entry without needing a separate sequence number.
/// (Ties cannot arise through the public API — every stamp comes from
/// a fresh clock increment — but the invariant is kept anyway.)
#[derive(Debug, Clone, Copy)]
struct Slot {
    pfn: u64,
    last_used: u64,
}

/// One set-associative translation lookaside buffer.
///
/// A TLB may hold entries of several page sizes (the unified L2 on Intel
/// parts holds 4 KiB and 2 MiB translations); the set index is derived
/// from the VPN at each entry's own page size and the match requires both
/// index and size to agree.
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    /// All slots in one contiguous slab, `ways` per set: set `s`
    /// occupies `slots[s * ways .. s * ways + lens[s]]`, live entries
    /// first, in insertion order. One allocation instead of a `Vec`
    /// per set keeps the per-access probe from chasing a pointer per
    /// set (the unified L2 has 128 of them).
    slots: Vec<Slot>,
    /// Packed match keys ([`vpn_key`]) parallel to `slots`. The probe
    /// scan compares 8-byte keys — a 12-way set fits in two cache
    /// lines instead of the nine its 48-byte slots span; the payload
    /// is only dereferenced on a hit.
    keys: Vec<u64>,
    /// Live-entry count per set.
    lens: Vec<u32>,
    /// Total live entries (sum of `lens`), kept incrementally so the
    /// hit path can skip scanning an empty structure in O(1) — the 1G
    /// L1 (and the 2M L1 before any promotion) is probed on every
    /// access but holds nothing.
    live: usize,
    ways: u32,
    clock: u64,
    /// `set_count - 1` when the set count is a power of two (the
    /// common geometries), letting [`Self::set_index`] mask instead of
    /// divide on the per-access path; `usize::MAX` otherwise.
    set_mask: usize,
    stats: TlbStats,
}

/// Packs a [`Vpn`] into the 8-byte match key the probe scan compares:
/// page index in the high bits, page size in the low two. Bijective,
/// so key equality is exactly `Vpn` equality.
#[inline(always)]
fn vpn_key(vpn: Vpn) -> u64 {
    (vpn.index() << 2) | vpn.size() as u64
}

/// Packs a [`Pfn`] the same way [`vpn_key`] packs a VPN.
#[inline(always)]
fn pfn_key(pfn: Pfn) -> u64 {
    (pfn.index() << 2) | pfn.size() as u64
}

/// Inverse of [`vpn_key`].
#[inline(always)]
fn key_vpn(key: u64) -> Vpn {
    Vpn::new(key >> 2, PageSize::ALL[(key & 3) as usize])
}

/// Inverse of [`pfn_key`].
#[inline(always)]
fn key_pfn(key: u64) -> Pfn {
    Pfn::new(key >> 2, PageSize::ALL[(key & 3) as usize])
}

/// Placeholder occupying slab slots beyond a set's live length; never
/// observable (every read is bounded by `lens`).
const EMPTY_SLOT: Slot = Slot {
    pfn: 0,
    last_used: 0,
};

impl SetAssocTlb {
    /// Creates a TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see
    /// [`TlbLevelConfig::validate`]).
    pub fn new(config: TlbLevelConfig) -> Self {
        config.validate().expect("invalid TLB geometry");
        let sets = config.sets() as usize;
        SetAssocTlb {
            slots: vec![EMPTY_SLOT; sets * config.ways as usize],
            keys: vec![0; sets * config.ways as usize],
            lens: vec![0; sets],
            live: 0,
            ways: config.ways,
            clock: 0,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                usize::MAX
            },
            stats: TlbStats::default(),
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.lens.len()
    }

    /// The live slots of set `idx`.
    fn set(&self, idx: usize) -> &[Slot] {
        let base = idx * self.ways as usize;
        &self.slots[base..base + self.lens[idx] as usize]
    }

    /// The live slots of set `idx`, mutably.
    fn set_mut(&mut self, idx: usize) -> &mut [Slot] {
        let base = idx * self.ways as usize;
        &mut self.slots[base..base + self.lens[idx] as usize]
    }

    /// Position of `vpn` among set `idx`'s live slots, via the packed
    /// key slab.
    #[inline(always)]
    fn find(&self, idx: usize, vpn: Vpn) -> Option<usize> {
        let base = idx * self.ways as usize;
        let key = vpn_key(vpn);
        self.keys[base..base + self.lens[idx] as usize]
            .iter()
            .position(|&k| k == key)
    }

    /// Order-preserving removal of live slot `pos` from set `idx`,
    /// returning the translation it held.
    fn remove_at(&mut self, idx: usize, pos: usize) -> Translation {
        let base = idx * self.ways as usize;
        let len = self.lens[idx] as usize;
        debug_assert!(pos < len);
        let victim = Translation {
            vpn: key_vpn(self.keys[base + pos]),
            pfn: key_pfn(self.slots[base + pos].pfn),
        };
        self.slots
            .copy_within(base + pos + 1..base + len, base + pos);
        self.keys
            .copy_within(base + pos + 1..base + len, base + pos);
        self.lens[idx] -= 1;
        self.live -= 1;
        victim
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Total entries currently resident.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Iterates over every resident translation, in no particular order.
    /// Read-only: recency and statistics are untouched — this is the
    /// auditor's view, not an architectural lookup.
    pub fn entries(&self) -> impl Iterator<Item = Translation> + '_ {
        (0..self.set_count()).flat_map(move |idx| {
            let base = idx * self.ways as usize;
            let len = self.lens[idx] as usize;
            self.keys[base..base + len]
                .iter()
                .zip(&self.slots[base..base + len])
                .map(|(&k, s)| Translation {
                    vpn: key_vpn(k),
                    pfn: key_pfn(s.pfn),
                })
        })
    }

    #[inline(always)]
    fn set_index(&self, vpn: Vpn) -> usize {
        if self.set_mask != usize::MAX {
            vpn.index() as usize & self.set_mask
        } else {
            (vpn.index() % self.lens.len() as u64) as usize
        }
    }

    /// Looks up the translation for `vpn` (VPN at a specific page size).
    /// Updates recency on a hit and the hit/miss statistics always.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Translation> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(vpn);
        if let Some(pos) = self.find(idx, vpn) {
            self.stats.hits += 1;
            let slot = &mut self.set_mut(idx)[pos];
            slot.last_used = clock;
            Some(Translation {
                vpn,
                pfn: key_pfn(slot.pfn),
            })
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Checks whether `vpn` is resident without updating recency or
    /// statistics.
    pub fn probe(&self, vpn: Vpn) -> Option<Translation> {
        if self.live == 0 {
            return None;
        }
        let idx = self.set_index(vpn);
        self.find(idx, vpn).map(|pos| Translation {
            vpn,
            pfn: key_pfn(self.set(idx)[pos].pfn),
        })
    }

    /// Hit-path combination of [`probe`](Self::probe) +
    /// [`lookup`](Self::lookup): a single set scan that, on a hit,
    /// refreshes recency and counts the hit exactly like `lookup` — and
    /// on a miss changes *nothing* (no clock tick, no miss counted),
    /// exactly like `probe`. The hierarchy's lookup uses this so a hit
    /// costs one scan instead of two.
    #[inline]
    pub fn touch(&mut self, vpn: Vpn) -> Option<Translation> {
        if self.live == 0 {
            return None;
        }
        let idx = self.set_index(vpn);
        let pos = self.find(idx, vpn)?;
        self.clock += 1;
        let clock = self.clock;
        self.stats.hits += 1;
        let slot = &mut self.set_mut(idx)[pos];
        slot.last_used = clock;
        Some(Translation {
            vpn,
            pfn: key_pfn(slot.pfn),
        })
    }

    /// Inserts a translation, evicting the LRU slot of its set when full.
    /// Returns the evicted translation, if any. Re-inserting a resident
    /// VPN refreshes its payload and recency without eviction.
    ///
    /// Recency ties are broken by slot position, which order-preserving
    /// removal keeps equal to insertion order (earliest-inserted evicted
    /// first): `Vec::swap_remove` used to perturb slot order on every
    /// invalidation, making tied evictions depend on incidental layout.
    pub fn insert(&mut self, translation: Translation) -> Option<Translation> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways as usize;
        let idx = self.set_index(translation.vpn);
        if let Some(pos) = self.find(idx, translation.vpn) {
            let slot = &mut self.set_mut(idx)[pos];
            slot.pfn = pfn_key(translation.pfn);
            slot.last_used = clock;
            return None;
        }
        let evicted = if self.lens[idx] as usize == ways {
            // First minimum wins (`min_by_key` would take the last):
            // lowest position is earliest-inserted on a recency tie.
            let set = self.set(idx);
            let mut lru = 0;
            for (i, s) in set.iter().enumerate().skip(1) {
                if s.last_used < set[lru].last_used {
                    lru = i;
                }
            }
            let victim = self.remove_at(idx, lru);
            self.stats.evictions += 1;
            Some(victim)
        } else {
            None
        };
        let base = idx * ways;
        let len = self.lens[idx] as usize;
        self.slots[base + len] = Slot {
            pfn: pfn_key(translation.pfn),
            last_used: clock,
        };
        self.keys[base + len] = vpn_key(translation.vpn);
        self.lens[idx] += 1;
        self.live += 1;
        evicted
    }

    /// Removes the entry for exactly `vpn`, returning whether it existed.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let idx = self.set_index(vpn);
        if let Some(pos) = self.find(idx, vpn) {
            self.remove_at(idx, pos);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Removes every entry whose page overlaps the huge region `region`
    /// (a TLB shootdown for a promotion/demotion invalidates stale
    /// translations of all sizes within the region). Returns the number
    /// removed.
    pub fn invalidate_region(&mut self, region: Vpn) -> usize {
        let start = region.base().raw();
        let end = start + region.size().bytes();
        let mut removed = 0;
        let ways = self.ways as usize;
        for idx in 0..self.lens.len() {
            let base_off = idx * ways;
            let len = self.lens[idx] as usize;
            // Order-preserving in-place compaction (retain).
            let mut keep = 0;
            for pos in 0..len {
                let vpn = key_vpn(self.keys[base_off + pos]);
                let base = vpn.base().raw();
                let span = vpn.size().bytes();
                // Keep entries that do not overlap [start, end).
                if base + span <= start || base >= end {
                    if keep != pos {
                        self.slots[base_off + keep] = self.slots[base_off + pos];
                        self.keys[base_off + keep] = self.keys[base_off + pos];
                    }
                    keep += 1;
                }
            }
            removed += len - keep;
            self.live -= len - keep;
            self.lens[idx] = keep as u32;
        }
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Empties the TLB (full flush).
    pub fn flush(&mut self) {
        self.lens.fill(0);
        self.live = 0;
    }

    /// Resolves a raw virtual address by probing at each page size this
    /// TLB could hold, smallest first. Convenience for unified TLBs.
    pub fn lookup_addr(&mut self, va: VirtAddr, sizes: &[PageSize]) -> Option<Translation> {
        for &size in sizes {
            if self.probe(va.vpn(size)).is_some() {
                return self.lookup(va.vpn(size));
            }
        }
        // Count a single miss for the failed lookup.
        self.clock += 1;
        self.stats.misses += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::Pfn;

    fn tr(i: u64) -> Translation {
        Translation {
            vpn: Vpn::new(i, PageSize::Base4K),
            pfn: Pfn::new(i + 1000, PageSize::Base4K),
        }
    }

    fn tlb(entries: u32, ways: u32) -> SetAssocTlb {
        SetAssocTlb::new(TlbLevelConfig::new(entries, ways))
    }

    #[test]
    fn hit_after_insert() {
        let mut t = tlb(8, 4);
        t.insert(tr(3));
        assert_eq!(t.lookup(tr(3).vpn), Some(tr(3)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 0);
    }

    #[test]
    fn miss_counts() {
        let mut t = tlb(8, 4);
        assert!(t.lookup(Vpn::new(1, PageSize::Base4K)).is_none());
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().miss_ratio(), 1.0);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets, 2 ways: indices 0,2,4 map to set 0.
        let mut t = tlb(4, 2);
        t.insert(tr(0));
        t.insert(tr(2));
        t.lookup(tr(0).vpn); // make 0 the MRU
        let evicted = t.insert(tr(4));
        assert_eq!(evicted, Some(tr(2)));
        assert!(t.probe(tr(0).vpn).is_some());
        assert!(t.probe(tr(4).vpn).is_some());
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn lru_ties_resolve_by_insertion_order_not_slot_position() {
        // Regression: eviction used `swap_remove`, so an invalidation
        // reordered the surviving slots and a later recency tie was
        // broken by whichever entry happened to sit first (here the
        // *newest* one), not by insertion order.
        let mut t = tlb(4, 4); // one fully-associative set
        for i in 0..4 {
            t.insert(tr(i)); // set 0 = [0, 1, 2, 3]
        }
        t.invalidate(tr(0).vpn); // swap_remove used to leave [3, 1, 2]
        t.insert(tr(4));
        // Force a recency tie across the whole set (unreachable through
        // the public API, whose clock stamps are unique — but exactly
        // the state an architectural LRU approximation with coarse
        // recency bits lives in).
        for slot in t.set_mut(0) {
            slot.last_used = 99;
        }
        // The earliest-inserted survivor must lose the tie.
        assert_eq!(t.insert(tr(5)), Some(tr(1)));
    }

    #[test]
    fn invalidate_preserves_slot_order() {
        let mut t = tlb(4, 4);
        for i in 0..4 {
            t.insert(tr(i));
        }
        t.invalidate(tr(1).vpn);
        let resident: Vec<u64> = t.entries().map(|e| e.vpn.index()).collect();
        assert_eq!(resident, vec![0, 2, 3]);
    }

    #[test]
    fn non_power_of_two_set_count_still_indexes_correctly() {
        // 12 entries / 4 ways = 3 sets: the mask fast path must not
        // apply; page 5 maps to set 5 % 3 = 2.
        let mut t = tlb(12, 4);
        assert_eq!(t.set_count(), 3);
        t.insert(tr(5));
        assert_eq!(t.lookup(tr(5).vpn), Some(tr(5)));
        assert_eq!(t.set(2).len(), 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut t = tlb(4, 2);
        t.insert(tr(0));
        assert_eq!(t.insert(tr(0)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_sizes_do_not_alias() {
        let mut t = tlb(8, 8);
        let a = Translation {
            vpn: Vpn::new(1, PageSize::Base4K),
            pfn: Pfn::new(1, PageSize::Base4K),
        };
        let b = Translation {
            vpn: Vpn::new(1, PageSize::Huge2M),
            pfn: Pfn::new(1, PageSize::Huge2M),
        };
        t.insert(a);
        t.insert(b);
        assert_eq!(t.lookup(a.vpn), Some(a));
        assert_eq!(t.lookup(b.vpn), Some(b));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn invalidate_exact() {
        let mut t = tlb(8, 4);
        t.insert(tr(3));
        assert!(t.invalidate(tr(3).vpn));
        assert!(!t.invalidate(tr(3).vpn));
        assert!(t.probe(tr(3).vpn).is_none());
    }

    #[test]
    fn invalidate_region_removes_contained_base_pages() {
        let mut t = tlb(1024, 8);
        let region = Vpn::new(1, PageSize::Huge2M); // covers 4K pages 512..1024
        t.insert(tr(512));
        t.insert(tr(1023));
        t.insert(tr(1024)); // outside
        let removed = t.invalidate_region(region);
        assert_eq!(removed, 2);
        assert!(t.probe(tr(1024).vpn).is_some());
    }

    #[test]
    fn invalidate_region_removes_huge_entry_itself() {
        let mut t = tlb(8, 8);
        let huge = Translation {
            vpn: Vpn::new(1, PageSize::Huge2M),
            pfn: Pfn::new(1, PageSize::Huge2M),
        };
        t.insert(huge);
        assert_eq!(t.invalidate_region(huge.vpn), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn invalidate_region_removes_overlapping_1g_entry() {
        let mut t = tlb(8, 8);
        let giant = Translation {
            vpn: Vpn::new(0, PageSize::Huge1G),
            pfn: Pfn::new(0, PageSize::Huge1G),
        };
        t.insert(giant);
        // Shooting down a 2MB region inside the 1GB page must remove it.
        assert_eq!(t.invalidate_region(Vpn::new(5, PageSize::Huge2M)), 1);
    }

    #[test]
    fn flush_empties() {
        let mut t = tlb(8, 4);
        t.insert(tr(1));
        t.insert(tr(2));
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    fn lookup_addr_probes_sizes() {
        let mut t = tlb(8, 8);
        let huge = Translation {
            vpn: Vpn::new(3, PageSize::Huge2M),
            pfn: Pfn::new(3, PageSize::Huge2M),
        };
        t.insert(huge);
        let va = huge.vpn.base().offset(0x1234);
        let sizes = [PageSize::Base4K, PageSize::Huge2M];
        assert_eq!(t.lookup_addr(va, &sizes), Some(huge));
        // A miss at all sizes counts one miss.
        let misses_before = t.stats().misses;
        assert!(t
            .lookup_addr(VirtAddr::new(0xdead_beef_000), &sizes)
            .is_none());
        assert_eq!(t.stats().misses, misses_before + 1);
    }

    #[test]
    fn capacity_respected() {
        let mut t = tlb(16, 4);
        for i in 0..1000 {
            t.insert(tr(i));
            assert!(t.len() <= 16);
        }
    }

    #[test]
    #[should_panic(expected = "invalid TLB geometry")]
    fn invalid_geometry_panics() {
        let _ = tlb(7, 2);
    }
}
