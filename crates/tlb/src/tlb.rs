//! A set-associative TLB with LRU replacement.

use crate::table::Translation;
use hpage_types::{PageSize, TlbLevelConfig, VirtAddr, Vpn};

/// Hit/miss counters for one TLB structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that found no matching entry.
    pub misses: u64,
    /// Entries displaced by fills into full sets.
    pub evictions: u64,
    /// Entries removed by invalidations (shootdowns).
    pub invalidations: u64,
}

impl TlbStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no lookups.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    translation: Translation,
    last_used: u64,
}

/// One set-associative translation lookaside buffer.
///
/// A TLB may hold entries of several page sizes (the unified L2 on Intel
/// parts holds 4 KiB and 2 MiB translations); the set index is derived
/// from the VPN at each entry's own page size and the match requires both
/// index and size to agree.
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    sets: Vec<Vec<Slot>>,
    ways: u32,
    clock: u64,
    stats: TlbStats,
}

impl SetAssocTlb {
    /// Creates a TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see
    /// [`TlbLevelConfig::validate`]).
    pub fn new(config: TlbLevelConfig) -> Self {
        config.validate().expect("invalid TLB geometry");
        SetAssocTlb {
            sets: vec![Vec::with_capacity(config.ways as usize); config.sets() as usize],
            ways: config.ways,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Total entries currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Iterates over every resident translation, in no particular order.
    /// Read-only: recency and statistics are untouched — this is the
    /// auditor's view, not an architectural lookup.
    pub fn entries(&self) -> impl Iterator<Item = Translation> + '_ {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|s| s.translation))
    }

    fn set_index(&self, vpn: Vpn) -> usize {
        (vpn.index() % self.sets.len() as u64) as usize
    }

    /// Looks up the translation for `vpn` (VPN at a specific page size).
    /// Updates recency on a hit and the hit/miss statistics always.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Translation> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(slot) = set.iter_mut().find(|s| s.translation.vpn == vpn) {
            slot.last_used = clock;
            self.stats.hits += 1;
            Some(slot.translation)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Checks whether `vpn` is resident without updating recency or
    /// statistics.
    pub fn probe(&self, vpn: Vpn) -> Option<Translation> {
        let idx = self.set_index(vpn);
        self.sets[idx]
            .iter()
            .find(|s| s.translation.vpn == vpn)
            .map(|s| s.translation)
    }

    /// Inserts a translation, evicting the LRU slot of its set when full.
    /// Returns the evicted translation, if any. Re-inserting a resident
    /// VPN refreshes its payload and recency without eviction.
    pub fn insert(&mut self, translation: Translation) -> Option<Translation> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways as usize;
        let idx = self.set_index(translation.vpn);
        let set = &mut self.sets[idx];
        if let Some(slot) = set
            .iter_mut()
            .find(|s| s.translation.vpn == translation.vpn)
        {
            slot.translation = translation;
            slot.last_used = clock;
            return None;
        }
        let evicted = if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("set is full, so nonempty");
            let victim = set.swap_remove(lru);
            self.stats.evictions += 1;
            Some(victim.translation)
        } else {
            None
        };
        set.push(Slot {
            translation,
            last_used: clock,
        });
        evicted
    }

    /// Removes the entry for exactly `vpn`, returning whether it existed.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|s| s.translation.vpn == vpn) {
            set.swap_remove(pos);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Removes every entry whose page overlaps the huge region `region`
    /// (a TLB shootdown for a promotion/demotion invalidates stale
    /// translations of all sizes within the region). Returns the number
    /// removed.
    pub fn invalidate_region(&mut self, region: Vpn) -> usize {
        let start = region.base().raw();
        let end = start + region.size().bytes();
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|s| {
                let base = s.translation.vpn.base().raw();
                let span = s.translation.size().bytes();
                // Keep entries that do not overlap [start, end).
                base + span <= start || base >= end
            });
            removed += before - set.len();
        }
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Empties the TLB (full flush).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Resolves a raw virtual address by probing at each page size this
    /// TLB could hold, smallest first. Convenience for unified TLBs.
    pub fn lookup_addr(&mut self, va: VirtAddr, sizes: &[PageSize]) -> Option<Translation> {
        for &size in sizes {
            if self.probe(va.vpn(size)).is_some() {
                return self.lookup(va.vpn(size));
            }
        }
        // Count a single miss for the failed lookup.
        self.clock += 1;
        self.stats.misses += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_types::Pfn;

    fn tr(i: u64) -> Translation {
        Translation {
            vpn: Vpn::new(i, PageSize::Base4K),
            pfn: Pfn::new(i + 1000, PageSize::Base4K),
        }
    }

    fn tlb(entries: u32, ways: u32) -> SetAssocTlb {
        SetAssocTlb::new(TlbLevelConfig::new(entries, ways))
    }

    #[test]
    fn hit_after_insert() {
        let mut t = tlb(8, 4);
        t.insert(tr(3));
        assert_eq!(t.lookup(tr(3).vpn), Some(tr(3)));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 0);
    }

    #[test]
    fn miss_counts() {
        let mut t = tlb(8, 4);
        assert!(t.lookup(Vpn::new(1, PageSize::Base4K)).is_none());
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().miss_ratio(), 1.0);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets, 2 ways: indices 0,2,4 map to set 0.
        let mut t = tlb(4, 2);
        t.insert(tr(0));
        t.insert(tr(2));
        t.lookup(tr(0).vpn); // make 0 the MRU
        let evicted = t.insert(tr(4));
        assert_eq!(evicted, Some(tr(2)));
        assert!(t.probe(tr(0).vpn).is_some());
        assert!(t.probe(tr(4).vpn).is_some());
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut t = tlb(4, 2);
        t.insert(tr(0));
        assert_eq!(t.insert(tr(0)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_sizes_do_not_alias() {
        let mut t = tlb(8, 8);
        let a = Translation {
            vpn: Vpn::new(1, PageSize::Base4K),
            pfn: Pfn::new(1, PageSize::Base4K),
        };
        let b = Translation {
            vpn: Vpn::new(1, PageSize::Huge2M),
            pfn: Pfn::new(1, PageSize::Huge2M),
        };
        t.insert(a);
        t.insert(b);
        assert_eq!(t.lookup(a.vpn), Some(a));
        assert_eq!(t.lookup(b.vpn), Some(b));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn invalidate_exact() {
        let mut t = tlb(8, 4);
        t.insert(tr(3));
        assert!(t.invalidate(tr(3).vpn));
        assert!(!t.invalidate(tr(3).vpn));
        assert!(t.probe(tr(3).vpn).is_none());
    }

    #[test]
    fn invalidate_region_removes_contained_base_pages() {
        let mut t = tlb(1024, 8);
        let region = Vpn::new(1, PageSize::Huge2M); // covers 4K pages 512..1024
        t.insert(tr(512));
        t.insert(tr(1023));
        t.insert(tr(1024)); // outside
        let removed = t.invalidate_region(region);
        assert_eq!(removed, 2);
        assert!(t.probe(tr(1024).vpn).is_some());
    }

    #[test]
    fn invalidate_region_removes_huge_entry_itself() {
        let mut t = tlb(8, 8);
        let huge = Translation {
            vpn: Vpn::new(1, PageSize::Huge2M),
            pfn: Pfn::new(1, PageSize::Huge2M),
        };
        t.insert(huge);
        assert_eq!(t.invalidate_region(huge.vpn), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn invalidate_region_removes_overlapping_1g_entry() {
        let mut t = tlb(8, 8);
        let giant = Translation {
            vpn: Vpn::new(0, PageSize::Huge1G),
            pfn: Pfn::new(0, PageSize::Huge1G),
        };
        t.insert(giant);
        // Shooting down a 2MB region inside the 1GB page must remove it.
        assert_eq!(t.invalidate_region(Vpn::new(5, PageSize::Huge2M)), 1);
    }

    #[test]
    fn flush_empties() {
        let mut t = tlb(8, 4);
        t.insert(tr(1));
        t.insert(tr(2));
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    fn lookup_addr_probes_sizes() {
        let mut t = tlb(8, 8);
        let huge = Translation {
            vpn: Vpn::new(3, PageSize::Huge2M),
            pfn: Pfn::new(3, PageSize::Huge2M),
        };
        t.insert(huge);
        let va = huge.vpn.base().offset(0x1234);
        let sizes = [PageSize::Base4K, PageSize::Huge2M];
        assert_eq!(t.lookup_addr(va, &sizes), Some(huge));
        // A miss at all sizes counts one miss.
        let misses_before = t.stats().misses;
        assert!(t
            .lookup_addr(VirtAddr::new(0xdead_beef_000), &sizes)
            .is_none());
        assert_eq!(t.stats().misses, misses_before + 1);
    }

    #[test]
    fn capacity_respected() {
        let mut t = tlb(16, 4);
        for i in 0..1000 {
            t.insert(tr(i));
            assert!(t.len() <= 16);
        }
    }

    #[test]
    #[should_panic(expected = "invalid TLB geometry")]
    fn invalid_geometry_panics() {
        let _ = tlb(7, 2);
    }
}
