//! Scratch profiling harness: where does an end-to-end simulated access go?
use hpage_sim::{PolicyChoice, ProcessSpec, SimProfile, Simulation};
use hpage_trace::{
    instantiate, AppId, Dataset, RecordedWorkload, SynthScale, Workload, WorkloadScale,
};
use std::time::Instant;

fn main() {
    let scale = WorkloadScale {
        graph_scale: 18,
        synth: SynthScale::BENCH,
        dbg_sorted: false,
    };
    let w = instantiate(AppId::Bfs, Dataset::Kronecker, scale, 0xC0FFEE);
    const N: usize = 2_000_000;

    // 1. Trace generation alone (stream path).
    let mut s = w.thread_stream(0, 1);
    let mut buf = Vec::with_capacity(256);
    let t0 = Instant::now();
    let mut total = 0usize;
    while total < N {
        buf.clear();
        let got = s.fill(&mut buf, 256.min(N - total));
        if got == 0 {
            break;
        }
        total += got;
    }
    let dt = t0.elapsed();
    println!(
        "tracegen: {total} accesses in {dt:?} = {:.1}M/s ({:.1} ns/access)",
        total as f64 / dt.as_secs_f64() / 1e6,
        dt.as_nanos() as f64 / total as f64
    );

    // 2. Full e2e on the live workload.
    let profile = SimProfile::scaled().sized_for(w.footprint_bytes());
    let run_live = || {
        Simulation::new(profile.system.clone(), PolicyChoice::pcc_default())
            .with_max_accesses_per_core(N as u64)
            .run(&[ProcessSpec::new(&w)])
    };
    run_live(); // warm
    let t0 = Instant::now();
    let r = run_live();
    let dt = t0.elapsed();
    println!(
        "e2e live: {} accesses in {dt:?} = {:.1}M/s ({:.1} ns/access)",
        r.aggregate.accesses,
        r.aggregate.accesses as f64 / dt.as_secs_f64() / 1e6,
        dt.as_nanos() as f64 / r.aggregate.accesses as f64
    );

    // 3. e2e on a pre-recorded trace (sim loop without generation).
    let mut accesses = Vec::with_capacity(N);
    {
        let mut s = w.thread_stream(0, 1);
        let mut len = accesses.len();
        while len < N {
            let got = s.fill(&mut accesses, N - len);
            if got == 0 {
                break;
            }
            len += got;
        }
    }
    let rec = RecordedWorkload::new("bfs18-recorded", accesses);
    let run_rec = || {
        Simulation::new(profile.system.clone(), PolicyChoice::pcc_default())
            .with_max_accesses_per_core(N as u64)
            .run(&[ProcessSpec::new(&rec)])
    };
    run_rec(); // warm
    let t0 = Instant::now();
    let r = run_rec();
    let dt = t0.elapsed();
    println!(
        "e2e recorded: {} accesses in {dt:?} = {:.1}M/s ({:.1} ns/access)",
        r.aggregate.accesses,
        r.aggregate.accesses as f64 / dt.as_secs_f64() / 1e6,
        dt.as_nanos() as f64 / r.aggregate.accesses as f64
    );
    println!("counters: {:?}", r.aggregate);

    // 4. Hierarchy-only replay: the recorded trace through one core's
    //    TLB hierarchy with an identity fill on miss.
    let accesses: Vec<hpage_types::MemoryAccess> = rec.trace().collect();
    let mut tlb = hpage_tlb::TlbHierarchy::new(profile.system.tlb);
    let t0 = Instant::now();
    let mut walks = 0u64;
    for a in &accesses {
        match tlb.lookup(a.addr) {
            hpage_tlb::TlbOutcome::L1Hit(_) | hpage_tlb::TlbOutcome::L2Hit(_) => {}
            hpage_tlb::TlbOutcome::Miss => {
                walks += 1;
                let vpn = a.addr.vpn(hpage_types::PageSize::Base4K);
                tlb.fill(hpage_tlb::Translation {
                    vpn,
                    pfn: hpage_types::Pfn::new(vpn.index(), hpage_types::PageSize::Base4K),
                });
            }
        }
    }
    let dt = t0.elapsed();
    println!(
        "tlb-only replay: {} accesses ({walks} walks) in {dt:?} = {:.1} ns/access",
        accesses.len(),
        dt.as_nanos() as f64 / accesses.len() as f64
    );

    // 5. PWC reference-rate sweep: every fig1 app under the scaled
    //    profile with the TLB-proportional PWC geometry (paper band for
    //    effective PWCs: 1.1-1.4 mean references/walk).
    for app in AppId::ALL {
        let pw = instantiate(app, Dataset::Kronecker, profile.workloads, 0xC0FFEE);
        let mut p = profile.clone().sized_for(pw.footprint_bytes());
        p.system.pwc = Some(hpage_types::PwcConfig::scaled_to_tlb_clamped(
            p.system.tlb.l2.entries,
        ));
        let r = Simulation::new(p.system.clone(), PolicyChoice::BasePages)
            .with_max_accesses_per_core(2_000_000)
            .run(&[ProcessSpec::new(&pw)]);
        println!(
            "pwc {:?}: walks={} walk_levels={} mean={:.3}",
            app,
            r.aggregate.walks,
            r.aggregate.walk_levels,
            r.aggregate.walk_levels as f64 / r.aggregate.walks as f64
        );
    }
}
