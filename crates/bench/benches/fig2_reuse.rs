//! Bench: regenerate Fig. 2 (reuse-distance characterisation of BFS).

use criterion::{criterion_group, criterion_main, Criterion};
use hpage_bench::bench_profile;
use hpage_sim::fig2_reuse;
use hpage_trace::AppId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("reuse_bfs", |b| {
        b.iter(|| black_box(fig2_reuse(&profile, AppId::Bfs, 200_000)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
