//! Bench: regenerate Fig. 6 (PCC size sensitivity sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use hpage_bench::bench_profile;
use hpage_sim::fig6_pcc_size;
use hpage_trace::AppId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("pcc_size_canneal", |b| {
        b.iter(|| black_box(fig6_pcc_size(&profile, &[AppId::Canneal], &[4, 32, 128])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
