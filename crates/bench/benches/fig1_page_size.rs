//! Bench: regenerate Fig. 1 (page-size potential and Linux THP under
//! 50% fragmentation) at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hpage_bench::bench_profile;
use hpage_sim::fig1_page_sizes;
use hpage_trace::AppId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("page_sizes_canneal_dedup", |b| {
        b.iter(|| black_box(fig1_page_sizes(&profile, &[AppId::Canneal, AppId::Dedup])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
