//! Bench: regenerate Fig. 8 (multithread selection policies).

use criterion::{criterion_group, criterion_main, Criterion};
use hpage_bench::bench_profile;
use hpage_sim::fig8_multithread;
use hpage_trace::AppId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("multithread2_canneal", |b| {
        b.iter(|| black_box(fig8_multithread(&profile, &[AppId::Canneal], &[2], &[0, 8])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
