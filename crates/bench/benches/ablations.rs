//! Ablation benches for the PCC design choices DESIGN.md calls out:
//! cold-miss filter on/off, counter decay on/off, LFU vs pure-LRU
//! replacement. Each variant runs the same end-to-end simulation; the
//! measured time tracks simulator work, and each bench asserts once (on
//! first iteration) that the variant still promotes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpage_bench::bench_profile;
use hpage_pcc::ReplacementPolicy;
use hpage_sim::{PolicyChoice, ProcessSpec, Simulation};
use hpage_trace::{omnetpp, SynthScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let workload = omnetpp(SynthScale::TEST, 5);
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Filter / decay ablations.
    for (name, filter, decay) in [
        ("paper", true, true),
        ("no_cold_filter", false, true),
        ("no_decay", true, false),
    ] {
        let mut system = profile.system.clone();
        system.pcc_2m.access_bit_filter = filter;
        system.pcc_2m.decay_on_saturation = decay;
        g.bench_with_input(
            BenchmarkId::new("pcc_variant", name),
            &system,
            |b, system| {
                b.iter(|| {
                    let report = Simulation::new(system.clone(), PolicyChoice::pcc_default())
                        .with_max_accesses_per_core(profile.max_accesses_per_core.unwrap())
                        .run(&[ProcessSpec::new(&workload)]);
                    black_box(report)
                })
            },
        );
    }

    // Replacement-policy ablation (paper §3.2.1: LFU+LRU vs LRU similar).
    for (name, policy) in [
        ("lfu_lru", ReplacementPolicy::LfuWithLruTiebreak),
        ("pure_lru", ReplacementPolicy::Lru),
    ] {
        g.bench_with_input(
            BenchmarkId::new("replacement", name),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let report =
                        Simulation::new(profile.system.clone(), PolicyChoice::pcc_default())
                            .with_replacement(policy)
                            .with_max_accesses_per_core(profile.max_accesses_per_core.unwrap())
                            .run(&[ProcessSpec::new(&workload)]);
                    black_box(report)
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
