//! Simulator-throughput benchmarks: accesses per second through the
//! TLB+PCC pipeline, and the component costs (hierarchy lookup, page
//! table walk). A trace-driven simulator's usefulness is bounded by
//! these numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpage_sim::{PolicyChoice, ProcessSpec, Simulation};
use hpage_tlb::{PageTable, TlbHierarchy};
use hpage_trace::{Pattern, SyntheticBuilder};
use hpage_types::{PageSize, Pfn, SystemConfig, TlbConfig, VirtAddr, Vpn};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");

    // End-to-end pipeline: 200k random accesses per iteration.
    const N: u64 = 200_000;
    let mut b = SyntheticBuilder::new("tput", 1);
    let arr = b.array(8, (16 << 20) / 8);
    b.phase(arr, Pattern::UniformRandom { count: N }, 0);
    let w = b.build();
    g.throughput(Throughput::Elements(N));
    g.sample_size(10);
    for policy in [PolicyChoice::BasePages, PolicyChoice::pcc_default()] {
        let label = policy.label();
        g.bench_function(format!("pipeline_{label}"), |bench| {
            bench.iter(|| {
                black_box(
                    Simulation::new(SystemConfig::tiny(), policy.clone())
                        .run(&[ProcessSpec::new(&w)]),
                )
            })
        });
    }

    // Component: TLB hierarchy lookup hit path.
    g.throughput(Throughput::Elements(1));
    g.bench_function("tlb_hierarchy_hit", |bench| {
        let mut tlb = TlbHierarchy::new(TlbConfig::paper());
        let pt_fill = |i: u64| hpage_tlb::Translation {
            vpn: Vpn::new(i, PageSize::Base4K),
            pfn: Pfn::new(i, PageSize::Base4K),
        };
        for i in 0..32 {
            tlb.fill(pt_fill(i));
        }
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 1) % 32;
            black_box(tlb.lookup(VirtAddr::new(i << 12)))
        });
    });

    // Component: hardware page-table walk (warm table).
    g.bench_function("page_table_walk", |bench| {
        let mut pt = PageTable::new();
        for i in 0..1024u64 {
            pt.map(Vpn::new(i, PageSize::Base4K), Pfn::new(i, PageSize::Base4K))
                .unwrap();
        }
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 1) % 1024;
            black_box(pt.walk(VirtAddr::new(i << 12)).unwrap())
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
