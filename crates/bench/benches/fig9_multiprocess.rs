//! Bench: regenerate Fig. 9 (multiprocess case studies).

use criterion::{criterion_group, criterion_main, Criterion};
use hpage_bench::bench_profile;
use hpage_sim::{fig9_multiprocess, Fig9Config};
use hpage_trace::AppId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("multiprocess_omnetpp_dedup", |b| {
        b.iter(|| {
            black_box(fig9_multiprocess(
                &profile,
                Fig9Config {
                    app_a: AppId::Omnetpp,
                    app_b: AppId::Dedup,
                },
                &[0, 100],
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
