//! Micro-benchmarks of the PCC's hardware-critical operations.
//!
//! §3.2.1 argues PCC operation latency is negligible because consecutive
//! page-table walks are hundreds of cycles apart; these benches measure
//! the software model's per-operation cost (hit bump, miss+LFU eviction,
//! ranked dump, shootdown invalidation).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpage_pcc::Pcc;
use hpage_types::{PageSize, PccConfig, Vpn};
use std::hint::black_box;

fn region(i: u64) -> Vpn {
    Vpn::new(i, PageSize::Huge2M)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pcc_ops");
    g.throughput(Throughput::Elements(1));

    g.bench_function("record_walk_hit", |b| {
        let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
        for i in 0..128 {
            pcc.record_walk(region(i), true);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 128;
            black_box(pcc.record_walk(region(i), true))
        });
    });

    g.bench_function("record_walk_miss_evict", |b| {
        let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(pcc.record_walk(region(i), true))
        });
    });

    g.bench_function("record_walk_filtered", |b| {
        let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
        b.iter(|| black_box(pcc.record_walk(region(7), false)));
    });

    g.bench_function("dump_128", |b| {
        let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
        for i in 0..128 {
            for _ in 0..=(i % 17) {
                pcc.record_walk(region(i), true);
            }
        }
        b.iter(|| black_box(pcc.dump()));
    });

    g.bench_function("invalidate_present", |b| {
        let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
        b.iter(|| {
            pcc.record_walk(region(5), true);
            black_box(pcc.invalidate(region(5)))
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
