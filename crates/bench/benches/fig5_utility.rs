//! Bench: regenerate Fig. 5 (PCC vs HawkEye utility curves) at bench
//! scale for one TLB-sensitive app.

use criterion::{criterion_group, criterion_main, Criterion};
use hpage_bench::bench_profile;
use hpage_sim::fig5_utility;
use hpage_trace::AppId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("utility_omnetpp", |b| {
        b.iter(|| black_box(fig5_utility(&profile, AppId::Omnetpp, &[0, 4, 100])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
