//! Hot-path baselines: the component costs every simulated access pays
//! (TLB lookup, page-table walk, PCC update) and end-to-end simulator
//! throughput on a scale-18 BFS workload.
//!
//! Unlike the figure benches, this suite persists its measurements:
//! results are written to `BENCH_hotpath.json` (override with
//! `HPAGE_BENCH_OUT`) so the repository accumulates a throughput
//! trajectory across PRs.
//!
//! Environment:
//! - `HPAGE_BENCH_SMOKE=1` — CI mode: fewer samples, shorter window.
//! - `HPAGE_BENCH_OUT=<path>` — where to write the JSON artifact.
//! - `HPAGE_BENCH_BASELINE=<path>` — committed baseline to compare
//!   against; prints a (non-blocking) warning on a >20% end-to-end
//!   throughput drop.

use criterion::{Criterion, Throughput};
use hpage_obs::json::num;
use hpage_pcc::Pcc;
use hpage_sim::{PolicyChoice, ProcessSpec, SimProfile, Simulation};
use hpage_tlb::{PageTable, SetAssocTlb, Translation};
use hpage_trace::{instantiate, AppId, Dataset, SynthScale, Workload, WorkloadScale};
use hpage_types::{PageSize, PccConfig, Pfn, TlbLevelConfig, VirtAddr, Vpn};
use std::hint::black_box;

/// End-to-end accesses/sec measured on the seed commit (pre hot-path
/// pass) on the reference machine, full mode — the denominator of the
/// `speedup_vs_pre_pr` field. 0.0 means "not yet recorded".
const PRE_PR_BFS18_ACCESSES_PER_S: f64 = 30_694_337.0;

fn bench(c: &mut Criterion, smoke: bool) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(if smoke { 3 } else { 10 });
    g.throughput(Throughput::Elements(1));

    // Component: single-level TLB lookup, hit path.
    g.bench_function("tlb_lookup", |b| {
        let mut tlb = SetAssocTlb::new(TlbLevelConfig::new(64, 4));
        for i in 0..64u64 {
            tlb.insert(Translation {
                vpn: Vpn::new(i, PageSize::Base4K),
                pfn: Pfn::new(i, PageSize::Base4K),
            });
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(tlb.lookup(Vpn::new(i, PageSize::Base4K)))
        });
    });

    // Component: warm 4-level page-table walk (4 KiB leaves).
    g.bench_function("page_table_walk", |b| {
        let mut pt = PageTable::new();
        for i in 0..4096u64 {
            pt.map(Vpn::new(i, PageSize::Base4K), Pfn::new(i, PageSize::Base4K))
                .unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(pt.walk(VirtAddr::new(i << 12)).unwrap())
        });
    });

    // Component: PCC frequency update on the hit path.
    g.bench_function("pcc_record_walk", |b| {
        let mut pcc = Pcc::new(PccConfig::paper_2m(), PageSize::Huge2M);
        for i in 0..32u64 {
            pcc.record_walk(Vpn::new(i, PageSize::Huge2M), true);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 32;
            black_box(pcc.record_walk(Vpn::new(i, PageSize::Huge2M), true))
        });
    });

    // End to end: the full TLB+PCC+OS pipeline on a scale-18 BFS
    // workload (the acceptance benchmark for the hot-path pass).
    let scale = WorkloadScale {
        graph_scale: 18,
        synth: SynthScale::BENCH,
        dbg_sorted: false,
    };
    let w = instantiate(AppId::Bfs, Dataset::Kronecker, scale, 0xC0FFEE);
    let profile = SimProfile::scaled().sized_for(w.footprint_bytes());

    // Trace pipeline: HPT2 decode throughput through the mmap-backed
    // zero-copy window path — the rate a recorded trace feeds the
    // simulator, excluding simulation itself.
    let trace_records: u64 = 2_000_000;
    let trace_path = {
        let mut p = std::env::temp_dir();
        p.push(format!("hpage-hotpath-{}.hpt2", std::process::id()));
        let file = std::fs::File::create(&p).expect("create bench trace");
        let mut wtr =
            hpage_trace::Hpt2Writer::new(std::io::BufWriter::new(file)).expect("hpt2 header");
        let mut s = w.thread_stream(0, 1);
        let mut left = trace_records;
        while left > 0 {
            let win = s.next_window(left.min(4096) as usize);
            if win.is_empty() {
                break;
            }
            left -= win.len() as u64;
            wtr.write_all(win.iter().copied()).expect("hpt2 block");
        }
        wtr.finish().expect("hpt2 trailer");
        p
    };
    let mapped = hpage_trace::MmapTrace::open("bench", &trace_path).expect("mmap bench trace");
    g.throughput(Throughput::Elements(trace_records));
    g.bench_function("hpt2_mmap_decode", |b| {
        b.iter(|| {
            let mut s = mapped.thread_stream(0, 1);
            let mut total = 0u64;
            loop {
                let win = s.next_window(4096);
                if win.is_empty() {
                    break;
                }
                total += win.len() as u64;
                black_box(win);
            }
            total
        })
    });

    // Meta-effect: streaming over the simulator's huge-page-aligned
    // working buffers (`HugeVec`, 2 MiB-aligned + MADV_HUGEPAGE) vs the
    // same traversal over a plain `Vec` — the dTLB-relief the tracing
    // buffers themselves get from THP.
    let words: usize = if smoke { 1 << 21 } else { 1 << 23 };
    let mut huge: hpage_trace::HugeVec<u64> = hpage_trace::HugeVec::with_capacity(words);
    let mut plain: Vec<u64> = Vec::with_capacity(words);
    for i in 0..words as u64 {
        huge.push(i.wrapping_mul(0x9E3779B97F4A7C15));
        plain.push(i.wrapping_mul(0x9E3779B97F4A7C15));
    }
    // Strided touch (one read per cache line) so the page-locality
    // difference, not memory bandwidth, dominates.
    let stride = 8;
    g.throughput(Throughput::Elements((words / stride) as u64));
    g.bench_function("hugevec_stream", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let s = huge.as_slice();
            let mut i = 0;
            while i < s.len() {
                acc = acc.wrapping_add(s[i]);
                i += stride;
            }
            black_box(acc)
        })
    });
    g.bench_function("vec_stream", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut i = 0;
            while i < plain.len() {
                acc = acc.wrapping_add(plain[i]);
                i += stride;
            }
            black_box(acc)
        })
    });
    // Same access cap in both modes: elems/s must be comparable against
    // the committed full-mode baseline (a shorter window over-weights
    // the cold pre-promotion phase and reads ~40% slow), so smoke mode
    // only trims the sample count. The cap is a fraction of the cost of
    // instantiating the scale-18 graph, which both modes pay anyway.
    let cap: u64 = 2_000_000;
    g.throughput(Throughput::Elements(cap));
    g.sample_size(if smoke { 2 } else { 5 });
    g.bench_function("bfs18_e2e", |b| {
        b.iter(|| {
            black_box(
                Simulation::new(profile.system.clone(), PolicyChoice::pcc_default())
                    .with_max_accesses_per_core(cap)
                    .run(&[ProcessSpec::new(&w)]),
            )
        })
    });
    g.finish();
    drop(mapped);
    let _ = std::fs::remove_file(&trace_path);
}

/// Serializes the captured results plus the pre-PR reference point.
fn artifact_json(c: &Criterion, mode: &str) -> String {
    let results: Vec<String> = c
        .results()
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"elems_per_s\":{}}}",
                r.id,
                num(r.min_ns),
                num(r.median_ns),
                num(r.mean_ns),
                r.elems_per_sec.map_or("null".into(), |e| num(e)),
            )
        })
        .collect();
    let bfs = bfs_eps(c);
    let speedup = match bfs {
        Some(eps) if PRE_PR_BFS18_ACCESSES_PER_S > 0.0 => num(eps / PRE_PR_BFS18_ACCESSES_PER_S),
        _ => "null".into(),
    };
    format!(
        "{{\"artifact\":\"hotpath-bench\",\"mode\":\"{mode}\",\"results\":[{}],\
         \"reference\":{{\"pre_pr_bfs18_accesses_per_s\":{},\"speedup_vs_pre_pr\":{}}}}}",
        results.join(","),
        num(PRE_PR_BFS18_ACCESSES_PER_S),
        speedup,
    )
}

fn bfs_eps(c: &Criterion) -> Option<f64> {
    c.results()
        .iter()
        .find(|r| r.id == "bfs18_e2e")
        .and_then(|r| r.elems_per_sec)
}

/// Extracts `bfs18_e2e`'s `elems_per_s` from a committed artifact
/// without a JSON parser: finds the id, then the next numeric field.
fn baseline_bfs_eps(text: &str) -> Option<f64> {
    let at = text.find("\"id\":\"bfs18_e2e\"")?;
    let rest = &text[at..];
    let key = "\"elems_per_s\":";
    let v = &rest[rest.find(key)? + key.len()..];
    let end = v.find([',', '}'])?;
    v[..end].trim().parse().ok()
}

fn main() {
    let smoke = std::env::var("HPAGE_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mode = if smoke { "smoke" } else { "full" };
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c, smoke);

    let out = std::env::var("HPAGE_BENCH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    let json = artifact_json(&c, mode);
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("hotpath: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("hotpath: results written to {out} ({mode} mode)");

    // Non-blocking regression check against a committed baseline.
    if let Ok(path) = std::env::var("HPAGE_BENCH_BASELINE") {
        match std::fs::read_to_string(&path) {
            Ok(text) => match (bfs_eps(&c), baseline_bfs_eps(&text)) {
                (Some(now), Some(then)) if now < 0.8 * then => eprintln!(
                    "hotpath: warning: bfs18_e2e throughput {now:.0} elem/s is >20% below \
                     the committed baseline {then:.0} elem/s ({path})"
                ),
                (Some(_), Some(_)) => {}
                _ => eprintln!("hotpath: warning: no bfs18_e2e datum to compare in {path}"),
            },
            Err(e) => eprintln!("hotpath: warning: cannot read baseline {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn baseline_parse() {
        let t = r#"{"results":[{"id":"x","elems_per_s":1.0},{"id":"bfs18_e2e","min_ns":3.0,"elems_per_s":2500000.5}]}"#;
        assert_eq!(super::baseline_bfs_eps(t), Some(2_500_000.5));
        assert_eq!(super::baseline_bfs_eps("{}"), None);
    }
}
