//! Bench: regenerate Fig. 7 (policy comparison at 90% fragmentation).

use criterion::{criterion_group, criterion_main, Criterion};
use hpage_bench::bench_profile;
use hpage_sim::fig7_fragmentation;
use hpage_trace::AppId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bench_profile();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("fragmentation90_omnetpp", |b| {
        b.iter(|| black_box(fig7_fragmentation(&profile, &[AppId::Omnetpp], 90)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
