//! Shared harness for the `repro` binary and the Criterion benches:
//! profile selection and table rendering for every figure/table of the
//! paper's evaluation.
//!
//! Every renderer that runs simulations takes a [`Harness`] and submits
//! its cells through it, so the `repro` binary can fan the whole grid
//! out across `--jobs` workers while the rendered tables stay
//! byte-identical to a sequential run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod trend;

use hpage_perf::{ascii_plot, fmt_pct, fmt_speedup, geomean_positive, TextTable};
use hpage_sim::{
    ablation_design_choices_on, dataset_sweep_on, fig1_page_sizes_on, fig2_reuse_on,
    fig5_utility_on, fig6_pcc_size_on, fig7_fragmentation_on, fig8_multithread_on,
    fig9_multiprocess_on, Cell, Fig9Config, Harness, PolicyChoice, SimProfile, Simulation,
};
use hpage_trace::{paper_table1, AppId};

/// Resolves the experiment profile from the environment:
/// `HPAGE_PROFILE=test|scaled|paper` (default `scaled`) and
/// `HPAGE_SCALE=<log2 vertices>` to override the graph scale.
pub fn profile_from_env() -> SimProfile {
    let mut profile = match std::env::var("HPAGE_PROFILE").as_deref() {
        Ok("test") => SimProfile::test(),
        Ok("paper") => SimProfile::paper(),
        _ => SimProfile::scaled(),
    };
    if let Ok(scale) = std::env::var("HPAGE_SCALE") {
        if let Ok(n) = scale.parse::<u32>() {
            profile = profile.with_graph_scale(n);
        }
    }
    profile
}

/// A fast profile for Criterion benches (each bench iteration runs a
/// whole experiment, so windows are kept short).
pub fn bench_profile() -> SimProfile {
    let mut p = SimProfile::test();
    p.max_accesses_per_core = Some(300_000);
    p
}

/// Renders a geomean summary line, excluding (and reporting) any
/// non-positive values instead of blanking the whole line — one
/// degenerate speedup used to erase the figure's summary row entirely.
/// Exclusions are also logged as harness warnings.
fn geomean_line(h: &Harness, what: &str, values: &[f64]) -> String {
    let s = geomean_positive(values);
    if s.is_partial() {
        h.log().warn(format!(
            "{what}: {} non-positive value(s) excluded from geomean",
            s.excluded
        ));
    }
    match s.value {
        Some(g) if !s.is_partial() => format!("{what}: {}", fmt_speedup(g)),
        Some(g) => format!(
            "{what}: {} ({} non-positive value(s) excluded)",
            fmt_speedup(g),
            s.excluded
        ),
        None => format!(
            "{what}: n/a ({} non-positive value(s) excluded)",
            s.excluded
        ),
    }
}

/// Renders Fig. 1 (page-size potential) as a table.
pub fn render_fig1(h: &Harness, profile: &SimProfile, apps: &[AppId]) -> String {
    let rows = fig1_page_sizes_on(h, profile, apps);
    let mut t = TextTable::new([
        "app",
        "TLB miss% (4KB)",
        "TLB miss% (2MB)",
        "TLB miss% (THP@50%frag)",
        "speedup (2MB)",
        "speedup (THP@50%frag)",
    ]);
    for r in &rows {
        t.row([
            r.app.clone(),
            fmt_pct(r.miss_4k),
            fmt_pct(r.miss_2m),
            fmt_pct(r.miss_linux),
            fmt_speedup(r.speedup_2m),
            fmt_speedup(r.speedup_linux),
        ]);
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup_2m).collect();
    let geo = geomean_line(h, "geomean 2MB speedup", &speedups);
    format!("Fig. 1 — page size potential vs Linux THP under fragmentation\n{t}\n{geo}\n")
}

/// Renders Fig. 2 (reuse-distance classes) as a table.
pub fn render_fig2(h: &Harness, profile: &SimProfile, app: AppId, window: u64) -> String {
    let s = fig2_reuse_on(h, profile, app, window);
    let mut t = TextTable::new(["class", "4KB pages", "share"]);
    let total = (s.tlb_friendly + s.hubs + s.low_reuse).max(1);
    for (name, n) in [
        ("TLB-friendly", s.tlb_friendly),
        ("HUB (promotion candidates)", s.hubs),
        ("low-reuse", s.low_reuse),
    ] {
        t.row([
            name.to_string(),
            n.to_string(),
            fmt_pct(n as f64 / total as f64),
        ]);
    }
    format!(
        "Fig. 2 — page reuse-distance classes for {} ({} accesses)\n{t}\nHUB pages span {} 2MiB regions\n",
        s.app, window, s.hub_regions
    )
}

/// Renders Fig. 5 (utility curves) for the given apps.
pub fn render_fig5(h: &Harness, profile: &SimProfile, apps: &[AppId], sweep: &[u64]) -> String {
    let mut out =
        String::from("Fig. 5 — utility curves (speedup / PTW% at N% footprint promoted)\n");
    for &app in apps {
        let (curves, linux50, linux90, ideal) = fig5_utility_on(h, profile, app, sweep);
        let mut t = TextTable::new(["policy / %footprint", "speedup", "PTW rate", "THPs"]);
        for curve in &curves {
            for p in &curve.points {
                t.row([
                    format!("{} @{}%", curve.policy, p.percent),
                    fmt_speedup(p.speedup),
                    fmt_pct(p.walk_ratio),
                    p.huge_pages_used.to_string(),
                ]);
            }
        }
        t.row([
            "linux-thp @50% frag".into(),
            fmt_speedup(linux50.0),
            fmt_pct(linux50.1),
            "-".into(),
        ]);
        t.row([
            "linux-thp @90% frag".into(),
            fmt_speedup(linux90.0),
            fmt_pct(linux90.1),
            "-".into(),
        ]);
        t.row([
            "max perf with THPs".into(),
            fmt_speedup(ideal.0),
            fmt_pct(ideal.1),
            "-".into(),
        ]);
        out.push_str(&format!(
            "\n[{}]\n{t}\n{}",
            app.name(),
            ascii_plot(&curves, 54, 12)
        ));
    }
    out
}

/// Renders Fig. 6 (PCC size sensitivity).
///
/// The sweep needs the HUB working set to exceed the small PCC sizes or
/// every size looks equal; callers should pass a profile with a graph
/// scale ~3 above the default (see `fig6_profile`).
pub fn render_fig6(h: &Harness, profile: &SimProfile, apps: &[AppId], sizes: &[u32]) -> String {
    let rows = fig6_pcc_size_on(h, profile, apps, sizes);
    let mut t = TextTable::new(["app", "PCC entries", "speedup"]);
    for r in &rows {
        let label = match r.pcc_entries {
            0 => "baseline (no PCC)".to_string(),
            u32::MAX => "ideal (all THPs)".to_string(),
            n => n.to_string(),
        };
        t.row([r.app.clone(), label, fmt_speedup(r.speedup)]);
    }
    format!("Fig. 6 — PCC size sensitivity (promotion cap 32% of footprint)\n{t}")
}

/// The profile used for the Fig. 6 sensitivity sweep: the base profile
/// with the graph scale raised so the number of HUB regions (and the
/// per-interval promotion opportunity) exceeds the small PCC sizes —
/// the regime where the paper's knee at ~128 entries is visible.
pub fn fig6_profile(base: &SimProfile) -> SimProfile {
    let bumped = base.workloads.graph_scale.saturating_add(3).min(24);
    base.clone().with_graph_scale(bumped)
}

/// Renders Fig. 7 (fragmented-memory policy comparison).
pub fn render_fig7(h: &Harness, profile: &SimProfile, apps: &[AppId], frag: u8) -> String {
    let rows = fig7_fragmentation_on(h, profile, apps, frag);
    let mut t = TextTable::new(["app", "hawkeye", "linux-thp", "pcc", "pcc+demote"]);
    for r in &rows {
        t.row([
            r.app.clone(),
            fmt_speedup(r.hawkeye),
            fmt_speedup(r.linux),
            fmt_speedup(r.pcc),
            fmt_speedup(r.pcc_demote),
        ]);
    }
    format!("Fig. 7 — speedups with {frag}% fragmented memory\n{t}")
}

/// Renders Fig. 8 (multithread selection policies).
pub fn render_fig8(
    h: &Harness,
    profile: &SimProfile,
    apps: &[AppId],
    threads: &[u32],
    sweep: &[u64],
) -> String {
    let rows = fig8_multithread_on(h, profile, apps, threads, sweep);
    let mut t = TextTable::new(["app", "threads", "policy", "%footprint", "speedup", "ideal"]);
    for r in &rows {
        for p in &r.curve.points {
            t.row([
                r.app.clone(),
                r.threads.to_string(),
                r.policy.to_string(),
                format!("{}%", p.percent),
                fmt_speedup(p.speedup),
                fmt_speedup(r.ideal_speedup),
            ]);
        }
    }
    format!("Fig. 8 — multithreaded selection policies\n{t}")
}

/// Renders one Fig. 9 case study.
pub fn render_fig9(h: &Harness, profile: &SimProfile, config: Fig9Config, sweep: &[u64]) -> String {
    let (rows, ideal) = fig9_multiprocess_on(h, profile, config, sweep);
    let col_a = format!("{} speedup", config.app_a.name());
    let col_b = format!("{} speedup", config.app_b.name());
    let mut t = TextTable::new(["policy", "%footprint", &col_a, &col_b, "THPs"]);
    for r in &rows {
        t.row([
            r.policy.to_string(),
            format!("{}%", r.percent),
            fmt_speedup(r.speedups.0),
            fmt_speedup(r.speedups.1),
            r.huge_pages.to_string(),
        ]);
    }
    format!(
        "Fig. 9 — multiprocess {} + {} (ideal: {} / {})\n{t}",
        config.app_a.name(),
        config.app_b.name(),
        fmt_speedup(ideal.0),
        fmt_speedup(ideal.1)
    )
}

/// Renders the time-to-benefit timeline: the per-interval PTW rate of
/// the PCC vs HawkEye vs baseline on one app — the paper's "the PCC
/// identifies HUBs faster" claim (§5.1) in timeline form.
pub fn render_timeline(h: &Harness, profile: &SimProfile, app: AppId) -> String {
    use hpage_os::PromotionBudget;
    use hpage_trace::Workload;
    let w = h.workload(profile, app);
    let sized = profile.clone().sized_for(w.footprint_bytes());
    let cell = |label: &str, policy: PolicyChoice| {
        let mut sim =
            Simulation::new(sized.system.clone(), policy).with_budget(PromotionBudget::UNLIMITED);
        if let Some(n) = profile.max_accesses_per_core {
            sim = sim.with_max_accesses_per_core(n);
        }
        Cell::new(
            format!("timeline/{}/{label}", app.name()),
            sim,
            w.clone() as hpage_sim::SharedWorkload,
        )
    };
    let reports = h.run(vec![
        cell("base-4k", PolicyChoice::BasePages),
        cell("pcc", PolicyChoice::pcc_default()),
        cell("hawkeye", PolicyChoice::HawkEye),
    ]);
    let (base, pcc, hawkeye) = (&reports[0], &reports[1], &reports[2]);
    let intervals = base
        .interval_series
        .len()
        .min(pcc.interval_series.len())
        .min(hawkeye.interval_series.len());
    let mut t = TextTable::new([
        "interval",
        "base PTW",
        "hawkeye PTW",
        "pcc PTW",
        "pcc L1 hit",
        "pcc L2 hit",
        "pcc promos",
        "PCC occ",
        "huge pages",
    ]);
    for i in 0..intervals {
        let p = &pcc.interval_series.rows()[i];
        t.row([
            i.to_string(),
            fmt_pct(base.interval_series.rows()[i].walk_rate),
            fmt_pct(hawkeye.interval_series.rows()[i].walk_rate),
            fmt_pct(p.walk_rate),
            fmt_pct(p.l1_hit_rate),
            fmt_pct(p.l2_hit_rate),
            p.promotions.to_string(),
            p.pcc_occupancy.to_string(),
            p.huge_pages_resident.to_string(),
        ]);
    }
    format!(
        "Time-to-benefit — per-interval flight-recorder series on {} (the PCC
collapses the PTW rate within the first intervals; scan-limited policies lag)
{t}",
        w.name()
    )
}

/// Runs the PCC policy with the promotion ledger on and renders the
/// per-app attribution summary (predicted vs realized walk savings and
/// the run-level `prediction_accuracy`). Also returns the full
/// per-region ledgers as JSON Lines — one `{"type":"ledger_run"}`
/// header per app followed by its entries — for `repro --ledger-out`.
pub fn render_ledger(h: &Harness, profile: &SimProfile, apps: &[AppId]) -> (String, String) {
    use hpage_trace::Workload;
    let cells: Vec<Cell> = apps
        .iter()
        .map(|&app| {
            let w = h.workload(profile, app);
            let sized = profile.clone().sized_for(w.footprint_bytes());
            let mut sim =
                Simulation::new(sized.system.clone(), PolicyChoice::pcc_default()).with_ledger();
            if let Some(n) = profile.max_accesses_per_core {
                sim = sim.with_max_accesses_per_core(n);
            }
            Cell::new(
                format!("ledger/{}/pcc", app.name()),
                sim,
                w as hpage_sim::SharedWorkload,
            )
        })
        .collect();
    let reports = h.run(cells);
    let mut t = TextTable::new([
        "app",
        "promotions",
        "demotions",
        "predicted walks",
        "realized walks",
        "prediction accuracy",
    ]);
    let mut jsonl = String::new();
    let mut accuracies = Vec::new();
    for (&app, report) in apps.iter().zip(&reports) {
        let ledger = report
            .ledger
            .as_ref()
            .expect("ledger cells record a ledger");
        let s = ledger.summary();
        t.row([
            app.name().to_string(),
            s.promotions.to_string(),
            s.demotions.to_string(),
            s.total_predicted.to_string(),
            format!("{:.0}", s.total_realized),
            format!("{:.6}", s.prediction_accuracy),
        ]);
        accuracies.push(s.prediction_accuracy);
        jsonl.push_str(&format!(
            "{{\"type\":\"ledger_run\",\"app\":\"{}\",\"policy\":\"{}\"}}\n",
            hpage_obs::json::esc(app.name()),
            hpage_obs::json::esc(&report.policy),
        ));
        jsonl.push_str(&ledger.to_jsonl());
    }
    let mean = accuracies.iter().sum::<f64>() / accuracies.len().max(1) as f64;
    let text = format!(
        "Promotion ledger — predicted vs realized walk savings (pcc)\n{t}\nmean prediction_accuracy: {mean:.6}\n"
    );
    (text, jsonl)
}

/// Runs the consolidation scenario (`tenants` mixed synthetic tenants
/// under churn, sharded across `sim_threads` workers) with a telemetry
/// recorder attached, and renders the per-tenant fairness table plus
/// the shootdown-storm summary. Returns `(table text, JSON fragment)`;
/// the fragment goes into `BENCH_repro.json` via
/// [`json::bench_repro_json`]'s `extra` parameter.
pub fn render_consolidation(
    h: &Harness,
    profile: &SimProfile,
    tenants: usize,
    sim_threads: usize,
) -> (String, String) {
    let cfg = hpage_sim::ConsolidationConfig::for_profile(profile, tenants, sim_threads);
    let mut telemetry = hpage_telemetry::TelemetryRecorder::new();
    let t0 = std::time::Instant::now();
    let r = hpage_sim::consolidation_on(profile, &cfg, &mut telemetry);
    h.log().record_cell(
        &format!("consolidation/{tenants}t/pcc"),
        t0.elapsed().as_secs_f64(),
    );
    let mut t = TextTable::new([
        "tenant",
        "mix",
        "accesses",
        "promotions",
        "PTW rate",
        "faults",
    ]);
    for row in &r.rows {
        t.row([
            row.tenant.clone(),
            row.mix.to_string(),
            row.accesses.to_string(),
            row.promotions.to_string(),
            fmt_pct(row.walk_ratio),
            row.faults.to_string(),
        ]);
    }
    let metrics = telemetry.metrics_snapshot();
    let storm_count = metrics.counter("shootdown_storm");
    let storm_p50 = metrics
        .histogram("shootdown_entries_flushed")
        .map(|hist| hist.quantile(0.5))
        .unwrap_or(0);
    let text = format!(
        "Consolidation — {} tenants on {} cores, churn plan \"consolidation-churn\" \
         (--sim-threads {})\n{t}\n\
         Jain fairness over promotion shares: {:.4}\n\
         promotions: {} performed, {} failed, {} huge pages resident at end\n\
         shootdown storms: {} flushes, {} entries total, max {}/core \
         (telemetry: count {}, p50 {})\n",
        r.tenants,
        r.tenants,
        r.sim_threads,
        r.fairness_index,
        r.total_promotions,
        r.promotion_failures,
        r.huge_pages_at_end,
        r.storm_flushes,
        r.storm_entries_flushed,
        r.storm_entries_max,
        storm_count,
        storm_p50,
    );
    let json = json::consolidation_json(&r);
    (text, json)
}

/// Runs the virtualization ablation (four mixed VMs under nested 2D
/// translation, once per PCC placement) and renders the per-VM table,
/// the placement geomean summary, and the FHPM verdict line. Returns
/// `(table text, JSON fragment)`; the fragment goes into
/// `BENCH_repro.json` via [`json::bench_repro_json`]'s `extras`.
pub fn render_virt(h: &Harness, profile: &SimProfile, sim_threads: usize) -> (String, String) {
    use hpage_types::PccPlacement;
    let cfg = hpage_sim::VirtConfig::for_profile(profile, sim_threads);
    let r = hpage_sim::virt_on(h, profile, &cfg);
    let mut t = TextTable::new([
        "placement",
        "vm",
        "mix",
        "refs/walk",
        "PTW rate",
        "refs/access",
        "guest promos",
        "host promos",
    ]);
    for row in &r.vm_rows {
        t.row([
            row.placement.to_string(),
            row.vm.clone(),
            row.mix.to_string(),
            format!("{:.3}", row.mean_refs),
            fmt_pct(row.walk_ratio),
            format!("{:.4}", row.refs_per_access),
            row.promotions.to_string(),
            row.host_promotions.to_string(),
        ]);
    }
    let mut s = TextTable::new([
        "placement",
        "geomean refs/access",
        "geomean refs/walk",
        "guest promos",
        "host promos",
        "host shootdowns",
    ]);
    for p in &r.placements {
        s.row([
            p.placement.to_string(),
            format!("{:.4}", p.geomean_cost),
            format!("{:.3}", p.geomean_refs),
            p.guest_promotions.to_string(),
            p.host_promotions.to_string(),
            p.host_shootdowns.to_string(),
        ]);
    }
    let both = r.placement(PccPlacement::Both);
    let guest = r.placement(PccPlacement::Guest);
    let host = r.placement(PccPlacement::Host);
    let verdict = if both.geomean_cost < guest.geomean_cost && both.geomean_cost < host.geomean_cost
    {
        "verdict: PCCs in both dimensions beat either dimension alone on geomean walk cost"
            .to_string()
    } else {
        h.log()
            .warn("virt: both-placement failed to beat a single placement");
        format!(
            "verdict: ANOMALY — both ({:.4}) does not beat guest ({:.4}) and host ({:.4})",
            both.geomean_cost, guest.geomean_cost, host.geomean_cost
        )
    };
    // No --sim-threads in the header: the text must be byte-identical at
    // any shard count (CI cmp's 1 vs 8); the count lives in the JSON.
    let text = format!(
        "Virtualization — 4 VMs under nested (2D) translation, PCC placement ablation\n\
         {t}\n{s}\n{verdict}\n"
    );
    let json = json::virt_json(&r);
    (text, json)
}

/// Renders the design-choice ablation table (DESIGN.md's ablation
/// targets: cold-miss filter, decay, replacement, PWC alternative).
pub fn render_ablation(h: &Harness, profile: &SimProfile, app: AppId) -> String {
    let rows = ablation_design_choices_on(h, profile, app);
    let mut t = TextTable::new(["variant", "speedup", "PTW rate", "promotions"]);
    for r in &rows {
        t.row([
            r.variant.clone(),
            fmt_speedup(r.speedup),
            fmt_pct(r.walk_ratio),
            r.promotions.to_string(),
        ]);
    }
    format!(
        "Ablations — PCC design choices on {}
{t}",
        app.name()
    )
}

/// Renders the multi-dataset sweep (Table 1's inputs across sorted and
/// unsorted variants, with the paper's geomean summary).
pub fn render_datasets(h: &Harness, profile: &SimProfile, apps: &[AppId]) -> String {
    let rows = dataset_sweep_on(h, profile, apps);
    let mut t = TextTable::new([
        "app",
        "dataset",
        "variant",
        "base PTW%",
        "pcc@4% speedup",
        "ideal",
    ]);
    for r in &rows {
        t.row([
            r.app.clone(),
            r.dataset.clone(),
            if r.dbg_sorted {
                "dbg-sorted"
            } else {
                "unsorted"
            }
            .to_string(),
            fmt_pct(r.base_walk_ratio),
            fmt_speedup(r.pcc_speedup_4pct),
            fmt_speedup(r.ideal_speedup),
        ]);
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.pcc_speedup_4pct).collect();
    let geo = geomean_line(h, "geomean pcc@4% speedup", &speedups);
    format!(
        "Dataset sweep — graph kernels across Table 1 networks
{t}
{geo}
"
    )
}

/// Renders Table 1 (evaluation applications and inputs).
pub fn render_table1() -> String {
    let mut t = TextTable::new(["application", "input", "paper footprint"]);
    for r in paper_table1() {
        t.row([
            r.app.name().to_string(),
            r.input.to_string(),
            format!("{} MB", r.paper_footprint_bytes >> 20),
        ]);
    }
    format!("Table 1 — evaluation applications and inputs (paper values)\n{t}")
}

/// Renders Table 2 (system parameters) from the active profile.
pub fn render_table2(profile: &SimProfile) -> String {
    let s = &profile.system;
    let mut t = TextTable::new(["parameter", "value"]);
    let tlb = |l: hpage_types::TlbLevelConfig| format!("{} entries, {}-way", l.entries, l.ways);
    t.row(["L1 D-TLB 4KB".to_string(), tlb(s.tlb.l1_4k)]);
    t.row(["L1 D-TLB 2MB".to_string(), tlb(s.tlb.l1_2m)]);
    t.row(["L1 D-TLB 1GB".to_string(), tlb(s.tlb.l1_1g)]);
    t.row(["L2 TLB (unified)".to_string(), tlb(s.tlb.l2)]);
    t.row([
        "2MB PCC (per core)".to_string(),
        format!(
            "{} entries, fully associative, {}-bit tags, {}-bit counters",
            s.pcc_2m.entries, s.pcc_2m.tag_bits, s.pcc_2m.counter_bits
        ),
    ]);
    t.row([
        "promotion cadence".to_string(),
        format!(
            "up to {} promotions every {} accesses",
            s.regions_to_promote, s.promotion_interval_accesses
        ),
    ]);
    t.row([
        "physical memory".to_string(),
        format!("{} MiB", s.phys_mem_bytes >> 20),
    ]);
    format!("Table 2 — system parameters (active profile)\n{t}")
}

/// Renders the §3.2.1 PCC storage arithmetic.
pub fn render_storage() -> String {
    let p2m = hpage_types::PccConfig::paper_2m();
    let p1g = hpage_types::PccConfig::paper_1g();
    let mut t = TextTable::new(["structure", "entry bits", "entries", "bytes"]);
    t.row([
        "2MB PCC".to_string(),
        p2m.entry_bits().to_string(),
        p2m.entries.to_string(),
        p2m.storage_bytes().to_string(),
    ]);
    t.row([
        "1GB PCC".to_string(),
        p1g.entry_bits().to_string(),
        p1g.entries.to_string(),
        p1g.storage_bytes().to_string(),
    ]);
    let total = p2m.storage_bytes() + p1g.storage_bytes();
    format!(
        "§3.2.1 — PCC storage arithmetic\n{t}\ntotal {total} B = {} TLB entries at 16 B/entry \
         (vs 64K base pages identifiable as candidates)\n",
        total / 16
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        assert!(render_table1().contains("Kronecker 25"));
        assert!(render_storage().contains("768"));
        assert!(render_storage().contains("50 TLB entries"));
        let t2 = render_table2(&SimProfile::paper());
        assert!(t2.contains("1024 entries, 8-way"));
        assert!(t2.contains("128 entries, fully associative"));
    }

    #[test]
    fn profile_from_env_defaults_are_valid() {
        let p = profile_from_env();
        p.system.validate().unwrap();
        bench_profile().system.validate().unwrap();
    }

    #[test]
    fn fig2_renders_quickly() {
        let mut p = SimProfile::test();
        p.max_accesses_per_core = Some(100_000);
        let s = render_fig2(&Harness::sequential(), &p, AppId::Bfs, 100_000);
        assert!(s.contains("HUB"));
    }

    fn micro_profile() -> SimProfile {
        let mut p = SimProfile::test();
        p.max_accesses_per_core = Some(150_000);
        p.workloads.graph_scale = 10;
        p
    }

    #[test]
    fn fig7_render_contains_policies() {
        let s = render_fig7(
            &Harness::sequential(),
            &micro_profile(),
            &[AppId::Dedup],
            90,
        );
        assert!(s.contains("hawkeye"));
        assert!(s.contains("pcc+demote"));
        assert!(s.contains("dedup"));
    }

    #[test]
    fn fig9_render_contains_both_apps() {
        let s = render_fig9(
            &Harness::sequential(),
            &micro_profile(),
            Fig9Config {
                app_a: AppId::Dedup,
                app_b: AppId::Mcf,
            },
            &[0, 100],
        );
        assert!(s.contains("dedup speedup"));
        assert!(s.contains("mcf speedup"));
        assert!(s.contains("round-robin"));
    }

    #[test]
    fn fig6_render_labels_extremes() {
        let s = render_fig6(
            &Harness::sequential(),
            &micro_profile(),
            &[AppId::Dedup],
            &[4],
        );
        assert!(s.contains("baseline (no PCC)"));
        assert!(s.contains("ideal (all THPs)"));
    }

    #[test]
    fn geomean_line_renders_partial_and_empty() {
        let h = Harness::sequential();
        assert_eq!(geomean_line(&h, "geo", &[2.0, 2.0]), "geo: 2.00x");
        assert!(h.log().warnings().is_empty());
        let partial = geomean_line(&h, "geo", &[4.0, 0.0]);
        assert_eq!(partial, "geo: 4.00x (1 non-positive value(s) excluded)");
        let blank = geomean_line(&h, "geo", &[0.0]);
        assert_eq!(blank, "geo: n/a (1 non-positive value(s) excluded)");
        assert_eq!(h.log().warnings().len(), 2);
    }

    #[test]
    fn consolidation_render_reports_fairness_and_storms() {
        let h = Harness::sequential();
        let (text, json) = render_consolidation(&h, &SimProfile::test(), 8, 4);
        assert!(text.contains("Jain fairness over promotion shares:"));
        assert!(text.contains("shootdown storms:"));
        assert!(text.contains("t07-"), "all 8 tenants render");
        hpage_obs::json::assert_json_shape(&json);
        assert!(json.contains("\"fairness_index\":"));
        assert!(json.contains("\"sim_threads\":4"));
        assert!(
            h.log()
                .cells()
                .iter()
                .any(|c| c.label.starts_with("consolidation/8t")),
            "the run is timed into the bench artifact"
        );
    }

    #[test]
    fn virt_render_reports_verdict_at_any_jobs() {
        let mut p = SimProfile::test();
        p.max_accesses_per_core = Some(1_500_000);
        let (text, json) = render_virt(&Harness::sequential(), &p, 1);
        assert!(text.contains("PCC placement ablation"));
        assert!(
            text.contains("verdict: PCCs in both dimensions beat either dimension alone"),
            "verdict line must confirm the FHPM claim:\n{text}"
        );
        for placement in ["none", "guest", "host", "both"] {
            assert!(text.contains(placement), "{placement} row renders");
        }
        hpage_obs::json::assert_json_shape(&json);
        assert!(json.contains("\"scenario\":\"virt\""));
        let par = render_virt(&Harness::new(4), &p, 1);
        assert_eq!(
            (text, json),
            par,
            "virt must be byte-identical at any --jobs"
        );
    }

    #[test]
    fn parallel_render_matches_sequential() {
        let p = micro_profile();
        let seq = render_fig7(&Harness::sequential(), &p, &[AppId::Dedup], 90);
        let par = render_fig7(&Harness::new(4), &p, &[AppId::Dedup], 90);
        assert_eq!(seq, par, "tables must be byte-identical at any --jobs");
    }

    #[test]
    fn ledger_render_reports_accuracy_at_any_jobs() {
        let p = micro_profile();
        let apps = [AppId::Bfs, AppId::Sssp];
        let (text, jsonl) = render_ledger(&Harness::sequential(), &p, &apps);
        assert!(text.contains("prediction accuracy"));
        assert!(text.contains("mean prediction_accuracy:"));
        assert!(jsonl.contains("\"type\":\"ledger_run\""));
        assert!(jsonl.contains("\"type\":\"ledger_summary\""));
        for line in jsonl.lines() {
            hpage_obs::json::assert_json_shape(line);
        }
        let par = render_ledger(&Harness::new(4), &p, &apps);
        assert_eq!(
            (text, jsonl),
            par,
            "ledger must be byte-identical at any --jobs"
        );
    }
}
