//! Bench-trajectory rendering: parses the accumulated history of
//! hotpath bench artifacts (`BENCH_history.jsonl`, one artifact per
//! line) and renders the `bfs18_e2e` accesses/sec trajectory as a
//! markdown table, spliced into EXPERIMENTS.md between the
//! [`TRAJECTORY_START`]/[`TRAJECTORY_END`] markers by `bench_trend`.
//!
//! Parsing is a targeted string scan, not a JSON parser: each history
//! line is machine-written by the hotpath bench in a known shape.
//! Malformed or truncated lines (a crashed CI run, a concurrent append,
//! a disk-full half-write) are skipped with a per-line warning and
//! counted, so one bad line never costs the whole trajectory.

/// Opening marker of the trajectory section in EXPERIMENTS.md.
pub const TRAJECTORY_START: &str = "<!-- bench-trajectory:start -->";
/// Closing marker of the trajectory section in EXPERIMENTS.md.
pub const TRAJECTORY_END: &str = "<!-- bench-trajectory:end -->";

/// One history entry: the artifact's mode and its end-to-end number.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// `full` (committed baselines) or `smoke` (CI drift checks).
    pub mode: String,
    /// `bfs18_e2e` throughput in accesses/sec.
    pub bfs18_accesses_per_s: f64,
}

fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let i = line.find(&tag)? + tag.len();
    let rest = &line[i..];
    Some(rest[..rest.find('"')?].to_string())
}

fn number_after(hay: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let i = hay.find(&tag)? + tag.len();
    let rest = &hay[i..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// What [`parse_history`] recovered from the history file: the valid
/// rows plus a warning per line it had to skip.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedHistory {
    /// Rows from every parseable line, in file order.
    pub rows: Vec<TrendRow>,
    /// One warning per skipped line, e.g.
    /// `line 2: no bfs18_e2e elems_per_s, skipped`.
    pub warnings: Vec<String>,
}

impl ParsedHistory {
    /// Number of lines skipped as corrupt or truncated.
    pub fn skipped(&self) -> usize {
        self.warnings.len()
    }
}

/// Parses the history file (blank lines skipped). Corrupt or truncated
/// lines are skipped with a warning carrying their 1-based line number,
/// never fatal: a trend splice must survive one bad append.
pub fn parse_history(jsonl: &str) -> ParsedHistory {
    let mut parsed = ParsedHistory::default();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(mode) = string_field(line, "mode") else {
            parsed
                .warnings
                .push(format!("line {}: no \"mode\" field, skipped", i + 1));
            continue;
        };
        let Some(e2e) = line
            .find("\"id\":\"bfs18_e2e\"")
            .and_then(|at| number_after(&line[at..], "elems_per_s"))
        else {
            parsed
                .warnings
                .push(format!("line {}: no bfs18_e2e elems_per_s, skipped", i + 1));
            continue;
        };
        parsed.rows.push(TrendRow {
            mode,
            bfs18_accesses_per_s: e2e,
        });
    }
    parsed
}

fn group_thousands(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Renders the trajectory as a markdown table. Ratios are against the
/// first (oldest) entry and the previous entry; `run 0` is the
/// committed full-mode baseline when the history starts from it.
pub fn render_trajectory(rows: &[TrendRow]) -> String {
    let mut out = String::from(
        "Simulator `bfs18_e2e` throughput trajectory (each `ci.sh` run appends its\n\
         smoke measurement to `BENCH_history.jsonl`; smoke mode is few-sample and\n\
         machine-dependent, so read trends, not single points):\n\n\
         | run | mode  | bfs18_e2e (accesses/s) | vs run 0 | vs prev |\n\
         |-----|-------|------------------------|----------|---------|\n",
    );
    let first = rows.first().map(|r| r.bfs18_accesses_per_s);
    let mut prev: Option<f64> = None;
    for (i, r) in rows.iter().enumerate() {
        let vs = |base: Option<f64>| match base {
            Some(b) if b > 0.0 => format!("{:.2}x", r.bfs18_accesses_per_s / b),
            _ => "—".to_string(),
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            i,
            r.mode,
            group_thousands(r.bfs18_accesses_per_s.round() as u64),
            vs(first),
            vs(prev),
        ));
        prev = Some(r.bfs18_accesses_per_s);
    }
    out
}

/// Replaces the text between the trajectory markers in `doc` with
/// `table`, keeping the markers.
///
/// # Errors
///
/// Returns a description when a marker is missing or out of order.
pub fn splice(doc: &str, table: &str) -> Result<String, String> {
    let start = doc
        .find(TRAJECTORY_START)
        .ok_or_else(|| format!("missing marker {TRAJECTORY_START}"))?
        + TRAJECTORY_START.len();
    let end = doc[start..]
        .find(TRAJECTORY_END)
        .ok_or_else(|| format!("missing (or misordered) marker {TRAJECTORY_END}"))?
        + start;
    Ok(format!("{}\n{}{}", &doc[..start], table, &doc[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"{"artifact":"hotpath-bench","mode":"full","results":[{"id":"tlb_lookup","elems_per_s":212426532.3},{"id":"bfs18_e2e","min_ns":41520774.0,"elems_per_s":46668669.063694}]}"#;

    #[test]
    fn parses_mode_and_e2e_throughput() {
        let parsed = parse_history(&format!("{LINE}\n\n{LINE}\n"));
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.skipped(), 0);
        assert_eq!(parsed.rows[0].mode, "full");
        assert!((parsed.rows[0].bfs18_accesses_per_s - 46668669.063694).abs() < 1e-6);
    }

    #[test]
    fn malformed_lines_are_skipped_with_numbered_warnings() {
        let parsed = parse_history(&format!("{LINE}\n{{\"mode\":\"smoke\"}}\n{LINE}\n"));
        assert_eq!(parsed.rows.len(), 2, "good lines survive the bad one");
        assert_eq!(parsed.skipped(), 1);
        assert!(
            parsed.warnings[0].contains("line 2"),
            "{:?}",
            parsed.warnings
        );
        assert!(
            parsed.warnings[0].contains("bfs18_e2e"),
            "{:?}",
            parsed.warnings
        );
    }

    #[test]
    fn truncated_tail_line_is_skipped_not_fatal() {
        // An interrupt mid-append leaves a half line; the trend must
        // keep everything before it.
        let half = &LINE[..LINE.len() / 2];
        let parsed = parse_history(&format!("{LINE}\n{half}"));
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.skipped(), 1);
        assert!(parsed.warnings[0].starts_with("line 2:"));
        // A fully corrupt file yields zero rows and all warnings.
        let garbage = parse_history("not json\nalso not\n");
        assert!(garbage.rows.is_empty());
        assert_eq!(garbage.skipped(), 2);
    }

    #[test]
    fn trajectory_table_tracks_ratios() {
        let rows = vec![
            TrendRow {
                mode: "full".into(),
                bfs18_accesses_per_s: 30_000_000.0,
            },
            TrendRow {
                mode: "smoke".into(),
                bfs18_accesses_per_s: 45_000_000.0,
            },
        ];
        let t = render_trajectory(&rows);
        assert!(t.contains("| 0 | full | 30,000,000 | 1.00x | — |"), "{t}");
        assert!(
            t.contains("| 1 | smoke | 45,000,000 | 1.50x | 1.50x |"),
            "{t}"
        );
    }

    #[test]
    fn splice_replaces_only_between_markers() {
        let doc = format!("before\n{TRAJECTORY_START}\nold\n{TRAJECTORY_END}\nafter\n");
        let out = splice(&doc, "new\n").unwrap();
        assert!(out.contains("before"));
        assert!(out.contains("after"));
        assert!(out.contains("new"));
        assert!(!out.contains("old"));
        // Splicing is idempotent on the marker structure.
        let again = splice(&out, "new\n").unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn splice_without_markers_is_an_error() {
        assert!(splice("no markers here", "t").is_err());
    }
}
