//! Minimal JSON emission for experiment results (`repro --json`).
//!
//! The escaping/number helpers live in [`hpage_obs::json`] — one
//! implementation shared with the flight recorder's JSONL sink.

use hpage_obs::json::{esc, num};
use hpage_perf::UtilityCurve;
use hpage_sim::{
    AblationRow, ConsolidationReport, DatasetRow, Fig1Row, Fig6Row, Fig7Row, Harness, VirtReport,
};

/// Serializes Fig. 1 rows.
pub fn fig1_json(rows: &[Fig1Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"app\":\"{}\",\"miss_4k\":{},\"miss_2m\":{},\"miss_linux\":{},\
                 \"speedup_2m\":{},\"speedup_linux\":{}}}",
                esc(&r.app),
                num(r.miss_4k),
                num(r.miss_2m),
                num(r.miss_linux),
                num(r.speedup_2m),
                num(r.speedup_linux)
            )
        })
        .collect();
    format!("{{\"figure\":\"1\",\"rows\":[{}]}}", items.join(","))
}

/// Serializes a set of utility curves (Fig. 5/8 bodies).
pub fn curves_json(figure: &str, curves: &[UtilityCurve]) -> String {
    let items: Vec<String> = curves
        .iter()
        .map(|c| {
            let points: Vec<String> = c
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"percent\":{},\"speedup\":{},\"walk_ratio\":{},\"thps\":{}}}",
                        p.percent,
                        num(p.speedup),
                        num(p.walk_ratio),
                        p.huge_pages_used
                    )
                })
                .collect();
            format!(
                "{{\"app\":\"{}\",\"policy\":\"{}\",\"points\":[{}]}}",
                esc(&c.app),
                esc(&c.policy),
                points.join(",")
            )
        })
        .collect();
    format!(
        "{{\"figure\":\"{}\",\"curves\":[{}]}}",
        esc(figure),
        items.join(",")
    )
}

/// Serializes Fig. 6 rows.
pub fn fig6_json(rows: &[Fig6Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"app\":\"{}\",\"pcc_entries\":{},\"speedup\":{}}}",
                esc(&r.app),
                r.pcc_entries,
                num(r.speedup)
            )
        })
        .collect();
    format!("{{\"figure\":\"6\",\"rows\":[{}]}}", items.join(","))
}

/// Serializes Fig. 7 rows.
pub fn fig7_json(rows: &[Fig7Row], frag_pct: u8) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"app\":\"{}\",\"hawkeye\":{},\"linux\":{},\"pcc\":{},\"pcc_demote\":{}}}",
                esc(&r.app),
                num(r.hawkeye),
                num(r.linux),
                num(r.pcc),
                num(r.pcc_demote)
            )
        })
        .collect();
    format!(
        "{{\"figure\":\"7\",\"fragmentation_pct\":{frag_pct},\"rows\":[{}]}}",
        items.join(",")
    )
}

/// Serializes ablation rows.
pub fn ablation_json(app: &str, rows: &[AblationRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"variant\":\"{}\",\"speedup\":{},\"walk_ratio\":{},\"promotions\":{}}}",
                esc(&r.variant),
                num(r.speedup),
                num(r.walk_ratio),
                r.promotions
            )
        })
        .collect();
    format!(
        "{{\"ablation\":\"{}\",\"rows\":[{}]}}",
        esc(app),
        items.join(",")
    )
}

/// Serializes dataset-sweep rows.
pub fn datasets_json(rows: &[DatasetRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"app\":\"{}\",\"dataset\":\"{}\",\"dbg_sorted\":{},\
                 \"base_walk_ratio\":{},\"pcc_speedup_4pct\":{},\"ideal_speedup\":{}}}",
                esc(&r.app),
                esc(&r.dataset),
                r.dbg_sorted,
                num(r.base_walk_ratio),
                num(r.pcc_speedup_4pct),
                num(r.ideal_speedup)
            )
        })
        .collect();
    format!("{{\"sweep\":\"datasets\",\"rows\":[{}]}}", items.join(","))
}

/// Serializes a consolidation run: the Jain fairness index over
/// per-tenant promotion shares, the shootdown-storm counters, and the
/// per-tenant rows.
pub fn consolidation_json(r: &ConsolidationReport) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\":\"{}\",\"mix\":\"{}\",\"accesses\":{},\"promotions\":{},\
                 \"walk_ratio\":{},\"faults\":{}}}",
                esc(&t.tenant),
                esc(t.mix),
                t.accesses,
                t.promotions,
                num(t.walk_ratio),
                t.faults
            )
        })
        .collect();
    format!(
        "{{\"scenario\":\"consolidation\",\"tenants\":{},\"sim_threads\":{},\"policy\":\"{}\",\
         \"fairness_index\":{},\"total_promotions\":{},\"promotion_failures\":{},\
         \"huge_pages_at_end\":{},\"shootdowns\":{},\"storms\":{{\"flushes\":{},\
         \"entries_flushed\":{},\"max_entries_flushed\":{}}},\"rows\":[{}]}}",
        r.tenants,
        r.sim_threads,
        esc(&r.policy),
        num(r.fairness_index),
        r.total_promotions,
        r.promotion_failures,
        r.huge_pages_at_end,
        r.shootdowns,
        r.storm_flushes,
        r.storm_entries_flushed,
        r.storm_entries_max,
        rows.join(",")
    )
}

/// Serializes the virtualization ablation: the per-placement geomean
/// walk costs and the per-(placement, VM) rows.
pub fn virt_json(r: &VirtReport) -> String {
    let placements: Vec<String> = r
        .placements
        .iter()
        .map(|p| {
            format!(
                "{{\"placement\":\"{}\",\"geomean_cost\":{},\"geomean_refs\":{},\
                 \"policy\":\"{}\",\"guest_promotions\":{},\"host_promotions\":{},\
                 \"host_shootdowns\":{}}}",
                p.placement,
                num(p.geomean_cost),
                num(p.geomean_refs),
                esc(&p.policy),
                p.guest_promotions,
                p.host_promotions,
                p.host_shootdowns
            )
        })
        .collect();
    let rows: Vec<String> = r
        .vm_rows
        .iter()
        .map(|v| {
            format!(
                "{{\"vm\":\"{}\",\"mix\":\"{}\",\"placement\":\"{}\",\"mean_refs\":{},\
                 \"walk_ratio\":{},\"refs_per_access\":{},\"promotions\":{},\
                 \"host_promotions\":{}}}",
                esc(&v.vm),
                esc(v.mix),
                v.placement,
                num(v.mean_refs),
                num(v.walk_ratio),
                num(v.refs_per_access),
                v.promotions,
                v.host_promotions
            )
        })
        .collect();
    format!(
        "{{\"scenario\":\"virt\",\"sim_threads\":{},\"placements\":[{}],\"rows\":[{}]}}",
        r.sim_threads,
        placements.join(","),
        rows.join(",")
    )
}

/// Serializes the `BENCH_repro.json` perf artifact: run metadata, the
/// harness's per-section and per-cell wall-clock timings, workload-cache
/// effectiveness, any rendering warnings, and any scenario fragments the
/// run produced — each `(key, json)` pair in `extras` embeds verbatim
/// under its key (e.g. `("consolidation", consolidation_json(..))`,
/// `("virt", virt_json(..))`).
pub fn bench_repro_json(
    h: &Harness,
    profile_name: &str,
    total_wall_s: f64,
    extras: &[(&str, &str)],
) -> String {
    let stats = h.cache().stats();
    let scenarios: String = extras
        .iter()
        .map(|(key, json)| format!("\"{}\":{json},", esc(key)))
        .collect();
    format!(
        "{{\"artifact\":\"repro-bench\",\"jobs\":{},\"profile\":\"{}\",\"total_wall_s\":{},\
         \"workload_cache\":{{\"entries\":{},\"hits\":{},\"misses\":{}}},{}{}}}",
        h.jobs(),
        esc(profile_name),
        num(total_wall_s),
        h.cache().len(),
        stats.hits,
        stats.misses,
        scenarios,
        h.log().to_json_fields()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpage_perf::UtilityPoint;

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn fig1_shape() {
        let rows = vec![Fig1Row {
            app: "BFS".into(),
            miss_4k: 0.295,
            miss_2m: 0.0,
            miss_linux: 0.294,
            speedup_2m: 2.54,
            speedup_linux: 1.0,
        }];
        let j = fig1_json(&rows);
        assert!(j.starts_with("{\"figure\":\"1\""));
        assert!(j.contains("\"app\":\"BFS\""));
        assert!(j.contains("\"speedup_2m\":2.540000"));
    }

    #[test]
    fn curves_shape() {
        let mut c = UtilityCurve::new("BFS", "pcc");
        c.points.push(UtilityPoint {
            percent: 4,
            speedup: 2.21,
            walk_ratio: 0.029,
            huge_pages_used: 2,
        });
        let j = curves_json("5", &[c]);
        assert!(j.contains("\"percent\":4"));
        assert!(j.contains("\"thps\":2"));
    }

    #[test]
    fn bench_artifact_shape() {
        let h = Harness::new(2);
        h.log().record_section("figure 1", 1.5);
        h.log().record_cell("fig1/BFS/base-4k", 0.7);
        h.log().warn("something partial");
        let j = bench_repro_json(&h, "test", 2.25, &[]);
        hpage_obs::json::assert_json_shape(&j);
        assert!(j.starts_with("{\"artifact\":\"repro-bench\",\"jobs\":2"));
        assert!(j.contains("\"profile\":\"test\""));
        assert!(j.contains("\"total_wall_s\":2.250000"));
        assert!(j.contains("\"sections\":[{\"label\":\"figure 1\""));
        assert!(j.contains("\"warnings\":[\"something partial\"]"));
        assert!(!j.contains("\"consolidation\""));
    }

    #[test]
    fn consolidation_artifact_shape() {
        use hpage_sim::ConsolidationTenantRow;
        let r = ConsolidationReport {
            tenants: 2,
            sim_threads: 4,
            policy: "pcc-highest-frequency".into(),
            rows: vec![
                ConsolidationTenantRow {
                    tenant: "t00-zipf".into(),
                    mix: "zipf",
                    accesses: 40_000,
                    promotions: 3,
                    walk_ratio: 0.125,
                    faults: 2048,
                },
                ConsolidationTenantRow {
                    tenant: "t01-stream".into(),
                    mix: "stream",
                    accesses: 30_000,
                    promotions: 1,
                    walk_ratio: 0.01,
                    faults: 1536,
                },
            ],
            fairness_index: 0.8,
            total_promotions: 4,
            promotion_failures: 0,
            huge_pages_at_end: 4,
            shootdowns: 4,
            storm_flushes: 4,
            storm_entries_flushed: 60,
            storm_entries_max: 21,
        };
        let j = consolidation_json(&r);
        hpage_obs::json::assert_json_shape(&j);
        assert!(j.contains("\"fairness_index\":0.800000"));
        assert!(j.contains("\"storms\":{\"flushes\":4"));
        assert!(j.contains("\"tenant\":\"t00-zipf\""));
        // And it embeds cleanly in the bench artifact.
        let h = Harness::new(1);
        h.log().record_cell("consolidation/2t/pcc", 0.3);
        let artifact = bench_repro_json(&h, "test", 0.5, &[("consolidation", &j)]);
        hpage_obs::json::assert_json_shape(&artifact);
        assert!(artifact.contains("\"consolidation\":{\"scenario\":\"consolidation\""));
    }

    #[test]
    fn virt_artifact_shape() {
        use hpage_sim::{VirtPlacementRow, VirtVmRow};
        let r = VirtReport {
            sim_threads: 2,
            vm_rows: vec![VirtVmRow {
                vm: "vm0-zipf".into(),
                mix: "zipf",
                placement: hpage_types::PccPlacement::Both,
                mean_refs: 2.5,
                walk_ratio: 0.05,
                refs_per_access: 0.125,
                promotions: 3,
                host_promotions: 2,
            }],
            placements: vec![VirtPlacementRow {
                placement: hpage_types::PccPlacement::Both,
                geomean_refs: 2.5,
                geomean_cost: 0.125,
                policy: "pcc-highest-frequency+nested-both".into(),
                guest_promotions: 3,
                host_promotions: 2,
                host_shootdowns: 2,
            }],
        };
        let j = virt_json(&r);
        hpage_obs::json::assert_json_shape(&j);
        assert!(j.contains("\"scenario\":\"virt\""));
        assert!(j.contains("\"placement\":\"both\""));
        assert!(j.contains("\"geomean_cost\":0.125000"));
        assert!(j.contains("\"vm\":\"vm0-zipf\""));
        let h = Harness::new(1);
        h.log().record_cell("virt/4vm/both", 0.2);
        let artifact = bench_repro_json(&h, "test", 0.5, &[("virt", &j)]);
        hpage_obs::json::assert_json_shape(&artifact);
        assert!(artifact.contains("\"virt\":{\"scenario\":\"virt\""));
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(2.5), "2.500000");
    }

    #[test]
    fn json_parses_as_json() {
        // Sanity with a tiny hand validator: balanced braces/brackets and
        // no raw control characters.
        let rows = vec![Fig6Row {
            app: "PR\"x".into(),
            pcc_entries: 128,
            speedup: 2.49,
        }];
        let j = fig6_json(&rows);
        let mut depth: i64 = 0;
        for c in j.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                c => assert!((c as u32) >= 0x20, "raw control char in JSON"),
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }
}
