//! `repro` — regenerates every table and figure of the paper's
//! evaluation as terminal tables.
//!
//! ```text
//! repro --all                     # everything (scaled profile)
//! repro --all --jobs 8            # same tables, 8 parallel workers
//! repro --figure 5                # one figure
//! repro --table 1                 # one table
//! repro --table storage           # the §3.2.1 storage arithmetic
//! HPAGE_PROFILE=test repro --all  # fast smoke run
//! HPAGE_SCALE=20 repro --figure 5 # bigger graphs
//! ```
//!
//! All simulation cells run on one deterministic harness: tables are
//! byte-identical at any `--jobs`, and every run that simulates
//! anything writes a `BENCH_repro.json` wall-clock artifact
//! (`--bench-out` overrides the path).

use hpage_bench::*;
use hpage_sim::{CellJournal, Fig9Config, Harness, SupervisorConfig};
use hpage_trace::AppId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const USAGE: &str = "usage: repro [--all] [--figure 1|2|5|6|7|8|9a|9b] [--table 1|2|storage] [--ablation] [--datasets] [--timeline] [--consolidation] [--tenants N] [--virt] [--ledger-out FILE] [--json 1|6|7|ablation|datasets] [--jobs N|-j N] [--sim-threads N] [--bench-out FILE] [--journal FILE | --resume FILE] [--retries N] [--harness-faults FILE] [--soft-deadline-ms N] [--hard-deadline-ms N] [--quiet|-q] [--verbose|-v]
parallelism: --jobs N runs up to N simulation cells concurrently (default: available cores; tables are byte-identical at any N);
           --sim-threads N shards the consolidation/virt simulation loops across N worker threads (default 1;
           reports are byte-identical at any N — hpsim accepts the same flag for single-scenario runs)
consolidation: --consolidation co-locates --tenants N mixed tenants (default 32) on one machine under a churn
           plan and reports the Jain fairness index over per-tenant promotion shares plus shootdown-storm
           metrics; both land in BENCH_repro.json under \"consolidation\"
virtualization: --virt co-locates 4 mixed VMs under nested (2D) translation and ablates the PCC placement
           (none|guest|host|both), reporting 2D walk cost per placement; the table lands in
           BENCH_repro.json under \"virt\" (hpsim --nested runs one workload the same way)
artifacts: runs that simulate anything write wall-clock timings to BENCH_repro.json (override with --bench-out);
           --ledger-out runs the PCC policy with the promotion ledger on, prints the
           predicted-vs-realized attribution summary, and writes per-region entries to FILE as JSONL
supervision: cells run under a supervisor — panics are isolated and retried (--retries, default 1)
           with seeded backoff; --soft/--hard-deadline-ms flag or abandon overrunning cells;
           --harness-faults injects cell_panic/cell_stall windows from a fault-plan JSON;
           a section whose cells still fail renders an 'n/a (cell failed: ...)' row
checkpoint: --journal FILE records completed cells+sections; --resume FILE replays completed
           sections byte-identically and re-runs only the rest
exit codes: 0 ok, 1 runtime error, 2 usage error, 3 completed with failed cells (partial output)
verbosity: progress notes go to stderr; --quiet silences them, -v adds per-section timing
environment: HPAGE_PROFILE=test|scaled|paper   HPAGE_SCALE=<log2 vertices>";

/// Largest accepted `--jobs` value — far above any real machine, small
/// enough to catch typos like `--jobs 10000`.
const MAX_JOBS: usize = 512;

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Parses and validates a `--jobs` operand: a usize in `1..=MAX_JOBS`.
/// Zero, garbage, and absurd values are usage errors (exit 2), never a
/// panic or a silent clamp.
fn parse_jobs(value: Option<&String>) -> usize {
    let Some(raw) = value else {
        die("--jobs needs a value");
    };
    match raw.parse::<usize>() {
        Ok(0) => die("--jobs must be at least 1"),
        Ok(n) if n > MAX_JOBS => die(&format!("--jobs {n} is out of range (max {MAX_JOBS})")),
        Ok(n) => n,
        Err(_) => die(&format!("--jobs expects a number, got '{raw}'")),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_JOBS))
        .unwrap_or(1)
}

/// Consumes a flag's operand, or usage-errors naming the flag.
fn path_value(flag: &str, it: &mut std::vec::IntoIter<String>) -> String {
    it.next()
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn num_value(flag: &str, it: &mut std::vec::IntoIter<String>) -> u64 {
    path_value(flag, it)
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} expects a number")))
}

/// Best-effort extraction of a panic payload's message.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Section runner: progress notes, wall-clock accounting, journal
/// replay/record, and degraded rendering.
///
/// Each section runs under `catch_unwind`: a grid whose cells failed
/// past their retry budget (the harness panics with an aggregate
/// message *after* the grid completes) degrades into an
/// `n/a (cell failed: …)` row instead of aborting the remaining
/// sections, and the run exits with code 3. With a journal attached,
/// completed sections are recorded with their full rendered output;
/// on `--resume`, already-recorded sections replay that output
/// byte-identically without re-running any cells.
struct Sections {
    verbosity: u8,
    journal: Option<Arc<CellJournal>>,
    failed: std::cell::Cell<bool>,
}

impl Sections {
    fn run<F: FnOnce() -> String>(&self, h: &Harness, label: &str, f: F) -> String {
        if let Some(stored) = self
            .journal
            .as_ref()
            .and_then(|j| j.completed_section(label))
        {
            if self.verbosity >= 1 {
                eprintln!("repro: {label}: replayed from journal");
            }
            h.log().record_section(label, 0.0);
            return stored;
        }
        if self.verbosity >= 1 {
            eprintln!("repro: rendering {label}...");
        }
        let t0 = std::time::Instant::now();
        let out = catch_unwind(AssertUnwindSafe(f));
        let wall = t0.elapsed().as_secs_f64();
        h.log().record_section(label, wall);
        match out {
            Ok(text) => {
                if self.verbosity >= 2 {
                    eprintln!("repro: {label} done in {wall:.1}s");
                }
                if let Some(j) = &self.journal {
                    if let Err(e) = j.record_section(label, &text) {
                        eprintln!("repro: warning: journal {}: {e}", j.path());
                    }
                }
                text
            }
            Err(payload) => {
                self.failed.set(true);
                let msg = panic_text(payload);
                eprintln!("repro: {label} failed: {msg}");
                format!("{label}: n/a (cell failed: {msg})")
            }
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut verbosity: u8 = 1;
    args.retain(|a| match a.as_str() {
        "--quiet" | "-q" => {
            verbosity = 0;
            false
        }
        "--verbose" | "-v" => {
            verbosity = 2;
            false
        }
        _ => true,
    });
    // --jobs/--bench-out and friends take a value, so they can't go
    // through retain.
    let mut jobs: Option<usize> = None;
    let mut bench_out = String::from("BENCH_repro.json");
    let mut ledger_out: Option<String> = None;
    let mut journal_out: Option<String> = None;
    let mut resume_from: Option<String> = None;
    let mut retries: u32 = 1;
    let mut harness_faults: Option<String> = None;
    let mut soft_deadline_ms: Option<u64> = None;
    let mut hard_deadline_ms: Option<u64> = None;
    let mut sim_threads: usize = 1;
    let mut tenants: usize = 32;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => jobs = Some(parse_jobs(it.next().as_ref())),
            "--sim-threads" => {
                sim_threads = num_value("--sim-threads", &mut it)
                    .try_into()
                    .ok()
                    .filter(|&n| (1..=MAX_JOBS).contains(&n))
                    .unwrap_or_else(|| die("--sim-threads must be in 1..=512"));
            }
            "--tenants" => {
                tenants = num_value("--tenants", &mut it)
                    .try_into()
                    .ok()
                    .filter(|&n| (2..=4096).contains(&n))
                    .unwrap_or_else(|| die("--tenants must be in 2..=4096"));
            }
            "--bench-out" => bench_out = path_value("--bench-out", &mut it),
            "--ledger-out" => ledger_out = Some(path_value("--ledger-out", &mut it)),
            "--journal" => journal_out = Some(path_value("--journal", &mut it)),
            "--resume" => resume_from = Some(path_value("--resume", &mut it)),
            "--harness-faults" => harness_faults = Some(path_value("--harness-faults", &mut it)),
            "--retries" => {
                retries = num_value("--retries", &mut it)
                    .try_into()
                    .unwrap_or_else(|_| die("--retries is out of range"))
            }
            "--soft-deadline-ms" => {
                soft_deadline_ms = Some(num_value("--soft-deadline-ms", &mut it))
            }
            "--hard-deadline-ms" => {
                hard_deadline_ms = Some(num_value("--hard-deadline-ms", &mut it))
            }
            _ => rest.push(a),
        }
    }
    let args = rest;
    if args.is_empty() && ledger_out.is_none() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if journal_out.is_some() && resume_from.is_some() {
        die("--journal and --resume are mutually exclusive (resume appends to its own file)");
    }
    let profile = profile_from_env();
    let profile_name = match std::env::var("HPAGE_PROFILE").as_deref() {
        Ok("test") => "test",
        Ok("paper") => "paper",
        _ => "scaled",
    };
    let scale = std::env::var("HPAGE_SCALE").unwrap_or_default();

    let mut supervisor = SupervisorConfig::default().with_max_retries(retries);
    if let Some(path) = &harness_faults {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("repro: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let plan = hpage_faults::FaultPlan::from_json(&text).unwrap_or_else(|e| {
            eprintln!("repro: {path}: {e}");
            std::process::exit(1);
        });
        supervisor = supervisor.with_faults(plan);
    }
    if let Some(ms) = soft_deadline_ms {
        supervisor = supervisor.with_soft_deadline_ms(ms);
    }
    if let Some(ms) = hard_deadline_ms {
        supervisor = supervisor.with_hard_deadline_ms(ms);
    }

    let journal: Option<Arc<CellJournal>> = match (&journal_out, &resume_from) {
        (Some(path), None) => Some(Arc::new(
            CellJournal::create(path, profile_name, &scale).unwrap_or_else(|e| {
                eprintln!("repro: cannot create journal {path}: {e}");
                std::process::exit(1);
            }),
        )),
        (None, Some(path)) => {
            let j = CellJournal::resume(path, profile_name, &scale).unwrap_or_else(|e| {
                eprintln!("repro: {e}");
                std::process::exit(1);
            });
            if verbosity >= 1 {
                eprintln!(
                    "repro: resuming from {path}: {} section(s), {} cell(s) on record{}",
                    j.completed_sections(),
                    j.completed_cells(),
                    if j.skipped_lines() > 0 {
                        format!(", {} corrupt line(s) skipped", j.skipped_lines())
                    } else {
                        String::new()
                    }
                );
            }
            Some(Arc::new(j))
        }
        _ => None,
    };

    let jobs = jobs.unwrap_or_else(default_jobs);
    let mut harness = Harness::new(jobs).with_supervisor(supervisor);
    if let Some(j) = &journal {
        harness = harness.with_journal(Arc::clone(j));
    }
    let harness = harness;
    let h = &harness;
    if verbosity >= 1 && jobs > 1 {
        eprintln!("repro: running up to {jobs} simulation cells in parallel");
    }
    let sections = Sections {
        verbosity,
        journal,
        failed: std::cell::Cell::new(false),
    };
    let sweep: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 100];
    let quick_sweep: &[u64] = &[0, 1, 4, 16, 100];
    // Filled by the --consolidation / --virt sections so their metrics
    // ride along in the BENCH_repro.json artifact.
    let consolidation_json: std::cell::RefCell<Option<String>> = std::cell::RefCell::new(None);
    let virt_json: std::cell::RefCell<Option<String>> = std::cell::RefCell::new(None);
    let run_start = std::time::Instant::now();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => {
                println!("{}", sections.run(h, "table 1", render_table1));
                println!("{}", sections.run(h, "table 2", || render_table2(&profile)));
                println!("{}", sections.run(h, "storage table", render_storage));
                println!(
                    "{}",
                    sections.run(h, "figure 1", || render_fig1(h, &profile, &AppId::ALL))
                );
                println!(
                    "{}",
                    sections.run(h, "figure 2", || render_fig2(
                        h,
                        &profile,
                        AppId::Bfs,
                        2_000_000
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "figure 5", || render_fig5(
                        h,
                        &profile,
                        &AppId::ALL,
                        sweep
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "figure 6", || render_fig6(
                        h,
                        &fig6_profile(&profile),
                        &AppId::GRAPH,
                        &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "figure 7", || render_fig7(
                        h,
                        &profile,
                        &AppId::GRAPH,
                        90
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "figure 8", || render_fig8(
                        h,
                        &profile,
                        &AppId::GRAPH,
                        &[2, 4, 8],
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "figure 9a", || render_fig9(
                        h,
                        &profile,
                        Fig9Config {
                            app_a: AppId::PageRank,
                            app_b: AppId::Mcf
                        },
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "figure 9b", || render_fig9(
                        h,
                        &profile,
                        Fig9Config {
                            app_a: AppId::PageRank,
                            app_b: AppId::Sssp
                        },
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "ablation", || render_ablation(h, &profile, AppId::Bfs))
                );
                println!(
                    "{}",
                    sections.run(h, "timeline", || render_timeline(h, &profile, AppId::Bfs))
                );
            }
            "--figure" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                // Labels match the --all section names so a journal
                // written by one invocation resumes under the other.
                match which {
                    "1" => println!(
                        "{}",
                        sections.run(h, "figure 1", || render_fig1(h, &profile, &AppId::ALL))
                    ),
                    "2" => println!(
                        "{}",
                        sections.run(h, "figure 2", || render_fig2(
                            h,
                            &profile,
                            AppId::Bfs,
                            2_000_000
                        ))
                    ),
                    "5" => println!(
                        "{}",
                        sections.run(h, "figure 5", || render_fig5(
                            h,
                            &profile,
                            &AppId::ALL,
                            sweep
                        ))
                    ),
                    "6" => println!(
                        "{}",
                        sections.run(h, "figure 6", || render_fig6(
                            h,
                            &fig6_profile(&profile),
                            &AppId::GRAPH,
                            &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
                        ))
                    ),
                    "7" => println!(
                        "{}",
                        sections.run(h, "figure 7", || render_fig7(
                            h,
                            &profile,
                            &AppId::GRAPH,
                            90
                        ))
                    ),
                    "8" => println!(
                        "{}",
                        sections.run(h, "figure 8", || render_fig8(
                            h,
                            &profile,
                            &AppId::GRAPH,
                            &[2, 4, 8],
                            quick_sweep
                        ))
                    ),
                    "9a" => println!(
                        "{}",
                        sections.run(h, "figure 9a", || render_fig9(
                            h,
                            &profile,
                            Fig9Config {
                                app_a: AppId::PageRank,
                                app_b: AppId::Mcf
                            },
                            quick_sweep
                        ))
                    ),
                    "9b" => println!(
                        "{}",
                        sections.run(h, "figure 9b", || render_fig9(
                            h,
                            &profile,
                            Fig9Config {
                                app_a: AppId::PageRank,
                                app_b: AppId::Sssp
                            },
                            quick_sweep
                        ))
                    ),
                    other => {
                        eprintln!("unknown figure '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--ablation" => {
                println!(
                    "{}",
                    sections.run(h, "ablation omnetpp", || render_ablation(
                        h,
                        &profile,
                        AppId::Omnetpp
                    ))
                );
                println!(
                    "{}",
                    sections.run(h, "ablation bfs", || render_ablation(
                        h,
                        &profile,
                        AppId::Bfs
                    ))
                );
            }
            "--datasets" => {
                println!(
                    "{}",
                    sections.run(h, "datasets", || render_datasets(
                        h,
                        &profile,
                        &AppId::GRAPH
                    ))
                );
            }
            "--timeline" => {
                println!(
                    "{}",
                    sections.run(h, "timeline", || render_timeline(h, &profile, AppId::Bfs))
                );
            }
            "--consolidation" => {
                println!(
                    "{}",
                    sections.run(h, "consolidation", || {
                        let (text, json) = render_consolidation(h, &profile, tenants, sim_threads);
                        *consolidation_json.borrow_mut() = Some(json);
                        text
                    })
                );
            }
            "--virt" => {
                println!(
                    "{}",
                    sections.run(h, "virt", || {
                        let (text, json) = render_virt(h, &profile, sim_threads);
                        *virt_json.borrow_mut() = Some(json);
                        text
                    })
                );
            }
            "--json" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!(
                        "{}",
                        hpage_bench::json::fig1_json(&hpage_sim::fig1_page_sizes_on(
                            h,
                            &profile,
                            &AppId::ALL
                        ))
                    ),
                    "6" => println!(
                        "{}",
                        hpage_bench::json::fig6_json(&hpage_sim::fig6_pcc_size_on(
                            h,
                            &fig6_profile(&profile),
                            &AppId::GRAPH,
                            &[4, 16, 64, 128, 512]
                        ))
                    ),
                    "7" => println!(
                        "{}",
                        hpage_bench::json::fig7_json(
                            &hpage_sim::fig7_fragmentation_on(h, &profile, &AppId::GRAPH, 90),
                            90
                        )
                    ),
                    "ablation" => println!(
                        "{}",
                        hpage_bench::json::ablation_json(
                            "BFS",
                            &hpage_sim::ablation_design_choices_on(h, &profile, AppId::Bfs)
                        )
                    ),
                    "datasets" => println!(
                        "{}",
                        hpage_bench::json::datasets_json(&hpage_sim::dataset_sweep_on(
                            h,
                            &profile,
                            &AppId::GRAPH
                        ))
                    ),
                    other => {
                        eprintln!("unknown json target '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--table" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!("{}", render_table1()),
                    "2" => println!("{}", render_table2(&profile)),
                    "storage" => println!("{}", render_storage()),
                    other => {
                        eprintln!("unknown table '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = &ledger_out {
        if verbosity >= 1 {
            eprintln!("repro: rendering promotion ledger...");
        }
        let t0 = std::time::Instant::now();
        let (text, jsonl) = render_ledger(h, &profile, &AppId::GRAPH);
        h.log()
            .record_section("promotion ledger", t0.elapsed().as_secs_f64());
        println!("{text}");
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        if verbosity >= 1 {
            eprintln!("repro: per-region ledger entries written to {path}");
        }
    }

    // Simulated anything? Persist the wall-clock artifact.
    if !h.log().cells().is_empty() {
        for w in h.log().warnings() {
            eprintln!("repro: warning: {w}");
        }
        let consolidation = consolidation_json.borrow();
        let virt = virt_json.borrow();
        let mut extras: Vec<(&str, &str)> = Vec::new();
        if let Some(j) = consolidation.as_deref() {
            extras.push(("consolidation", j));
        }
        if let Some(j) = virt.as_deref() {
            extras.push(("virt", j));
        }
        let artifact = hpage_bench::json::bench_repro_json(
            h,
            profile_name,
            run_start.elapsed().as_secs_f64(),
            &extras,
        );
        if let Err(e) = std::fs::write(&bench_out, artifact + "\n") {
            eprintln!("repro: cannot write {bench_out}: {e}");
            std::process::exit(1);
        }
        if verbosity >= 1 {
            eprintln!("repro: wall-clock timings written to {bench_out}");
        }
    }

    // Partial output: every requested section was attempted (degraded
    // ones rendered as `n/a` rows) but at least one cell exhausted its
    // retry budget. Distinct from exit 1 so callers can keep partial
    // artifacts while still flagging the run.
    if sections.failed.get() || !h.log().failures().is_empty() {
        if verbosity >= 1 {
            eprintln!("repro: completed with failed cells (partial output)");
        }
        std::process::exit(3);
    }
}
