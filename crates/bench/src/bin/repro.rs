//! `repro` — regenerates every table and figure of the paper's
//! evaluation as terminal tables.
//!
//! ```text
//! repro --all                     # everything (scaled profile)
//! repro --all --jobs 8            # same tables, 8 parallel workers
//! repro --figure 5                # one figure
//! repro --table 1                 # one table
//! repro --table storage           # the §3.2.1 storage arithmetic
//! HPAGE_PROFILE=test repro --all  # fast smoke run
//! HPAGE_SCALE=20 repro --figure 5 # bigger graphs
//! ```
//!
//! All simulation cells run on one deterministic harness: tables are
//! byte-identical at any `--jobs`, and every run that simulates
//! anything writes a `BENCH_repro.json` wall-clock artifact
//! (`--bench-out` overrides the path).

use hpage_bench::*;
use hpage_sim::{Fig9Config, Harness};
use hpage_trace::AppId;

const USAGE: &str = "usage: repro [--all] [--figure 1|2|5|6|7|8|9a|9b] [--table 1|2|storage] [--ablation] [--datasets] [--timeline] [--ledger-out FILE] [--json 1|6|7|ablation|datasets] [--jobs N|-j N] [--bench-out FILE] [--quiet|-q] [--verbose|-v]
parallelism: --jobs N runs up to N simulation cells concurrently (default: available cores; tables are byte-identical at any N)
artifacts: runs that simulate anything write wall-clock timings to BENCH_repro.json (override with --bench-out);
           --ledger-out runs the PCC policy with the promotion ledger on, prints the
           predicted-vs-realized attribution summary, and writes per-region entries to FILE as JSONL
verbosity: progress notes go to stderr; --quiet silences them, -v adds per-section timing
environment: HPAGE_PROFILE=test|scaled|paper   HPAGE_SCALE=<log2 vertices>";

/// Largest accepted `--jobs` value — far above any real machine, small
/// enough to catch typos like `--jobs 10000`.
const MAX_JOBS: usize = 512;

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Parses and validates a `--jobs` operand: a usize in `1..=MAX_JOBS`.
/// Zero, garbage, and absurd values are usage errors (exit 2), never a
/// panic or a silent clamp.
fn parse_jobs(value: Option<&String>) -> usize {
    let Some(raw) = value else {
        die("--jobs needs a value");
    };
    match raw.parse::<usize>() {
        Ok(0) => die("--jobs must be at least 1"),
        Ok(n) if n > MAX_JOBS => die(&format!("--jobs {n} is out of range (max {MAX_JOBS})")),
        Ok(n) => n,
        Err(_) => die(&format!("--jobs expects a number, got '{raw}'")),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_JOBS))
        .unwrap_or(1)
}

/// Runs one render step, with progress (and, verbosely, timing) on
/// stderr so long `--all` runs are not silent. Section wall-clock goes
/// into the harness log for the bench artifact.
fn section<F: FnOnce() -> String>(h: &Harness, verbosity: u8, label: &str, f: F) -> String {
    if verbosity >= 1 {
        eprintln!("repro: rendering {label}...");
    }
    let t0 = std::time::Instant::now();
    let out = f();
    let wall = t0.elapsed().as_secs_f64();
    h.log().record_section(label, wall);
    if verbosity >= 2 {
        eprintln!("repro: {label} done in {wall:.1}s");
    }
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut verbosity: u8 = 1;
    args.retain(|a| match a.as_str() {
        "--quiet" | "-q" => {
            verbosity = 0;
            false
        }
        "--verbose" | "-v" => {
            verbosity = 2;
            false
        }
        _ => true,
    });
    // --jobs/--bench-out take a value, so they can't go through retain.
    let mut jobs: Option<usize> = None;
    let mut bench_out = String::from("BENCH_repro.json");
    let mut ledger_out: Option<String> = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => jobs = Some(parse_jobs(it.next().as_ref())),
            "--bench-out" => match it.next() {
                Some(path) => bench_out = path,
                None => die("--bench-out needs a path"),
            },
            "--ledger-out" => match it.next() {
                Some(path) => ledger_out = Some(path),
                None => die("--ledger-out needs a path"),
            },
            _ => rest.push(a),
        }
    }
    let args = rest;
    if args.is_empty() && ledger_out.is_none() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let jobs = jobs.unwrap_or_else(default_jobs);
    let harness = Harness::new(jobs);
    let h = &harness;
    if verbosity >= 1 && jobs > 1 {
        eprintln!("repro: running up to {jobs} simulation cells in parallel");
    }
    let profile = profile_from_env();
    let profile_name = match std::env::var("HPAGE_PROFILE").as_deref() {
        Ok("test") => "test",
        Ok("paper") => "paper",
        _ => "scaled",
    };
    let sweep: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 100];
    let quick_sweep: &[u64] = &[0, 1, 4, 16, 100];
    let run_start = std::time::Instant::now();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => {
                println!("{}", section(h, verbosity, "table 1", render_table1));
                println!(
                    "{}",
                    section(h, verbosity, "table 2", || render_table2(&profile))
                );
                println!("{}", section(h, verbosity, "storage table", render_storage));
                println!(
                    "{}",
                    section(h, verbosity, "figure 1", || render_fig1(
                        h,
                        &profile,
                        &AppId::ALL
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "figure 2", || render_fig2(
                        h,
                        &profile,
                        AppId::Bfs,
                        2_000_000
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "figure 5", || render_fig5(
                        h,
                        &profile,
                        &AppId::ALL,
                        sweep
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "figure 6", || render_fig6(
                        h,
                        &fig6_profile(&profile),
                        &AppId::GRAPH,
                        &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "figure 7", || render_fig7(
                        h,
                        &profile,
                        &AppId::GRAPH,
                        90
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "figure 8", || render_fig8(
                        h,
                        &profile,
                        &AppId::GRAPH,
                        &[2, 4, 8],
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "figure 9a", || render_fig9(
                        h,
                        &profile,
                        Fig9Config {
                            app_a: AppId::PageRank,
                            app_b: AppId::Mcf
                        },
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "figure 9b", || render_fig9(
                        h,
                        &profile,
                        Fig9Config {
                            app_a: AppId::PageRank,
                            app_b: AppId::Sssp
                        },
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "ablation", || render_ablation(
                        h,
                        &profile,
                        AppId::Bfs
                    ))
                );
                println!(
                    "{}",
                    section(h, verbosity, "timeline", || render_timeline(
                        h,
                        &profile,
                        AppId::Bfs
                    ))
                );
            }
            "--figure" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!("{}", render_fig1(h, &profile, &AppId::ALL)),
                    "2" => println!("{}", render_fig2(h, &profile, AppId::Bfs, 2_000_000)),
                    "5" => println!("{}", render_fig5(h, &profile, &AppId::ALL, sweep)),
                    "6" => println!(
                        "{}",
                        render_fig6(
                            h,
                            &fig6_profile(&profile),
                            &AppId::GRAPH,
                            &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
                        )
                    ),
                    "7" => println!("{}", render_fig7(h, &profile, &AppId::GRAPH, 90)),
                    "8" => println!(
                        "{}",
                        render_fig8(h, &profile, &AppId::GRAPH, &[2, 4, 8], quick_sweep)
                    ),
                    "9a" => println!(
                        "{}",
                        render_fig9(
                            h,
                            &profile,
                            Fig9Config {
                                app_a: AppId::PageRank,
                                app_b: AppId::Mcf
                            },
                            quick_sweep
                        )
                    ),
                    "9b" => println!(
                        "{}",
                        render_fig9(
                            h,
                            &profile,
                            Fig9Config {
                                app_a: AppId::PageRank,
                                app_b: AppId::Sssp
                            },
                            quick_sweep
                        )
                    ),
                    other => {
                        eprintln!("unknown figure '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--ablation" => {
                println!("{}", render_ablation(h, &profile, AppId::Omnetpp));
                println!("{}", render_ablation(h, &profile, AppId::Bfs));
            }
            "--datasets" => {
                println!("{}", render_datasets(h, &profile, &AppId::GRAPH));
            }
            "--timeline" => {
                println!(
                    "{}",
                    section(h, verbosity, "timeline", || render_timeline(
                        h,
                        &profile,
                        AppId::Bfs
                    ))
                );
            }
            "--json" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!(
                        "{}",
                        hpage_bench::json::fig1_json(&hpage_sim::fig1_page_sizes_on(
                            h,
                            &profile,
                            &AppId::ALL
                        ))
                    ),
                    "6" => println!(
                        "{}",
                        hpage_bench::json::fig6_json(&hpage_sim::fig6_pcc_size_on(
                            h,
                            &fig6_profile(&profile),
                            &AppId::GRAPH,
                            &[4, 16, 64, 128, 512]
                        ))
                    ),
                    "7" => println!(
                        "{}",
                        hpage_bench::json::fig7_json(
                            &hpage_sim::fig7_fragmentation_on(h, &profile, &AppId::GRAPH, 90),
                            90
                        )
                    ),
                    "ablation" => println!(
                        "{}",
                        hpage_bench::json::ablation_json(
                            "BFS",
                            &hpage_sim::ablation_design_choices_on(h, &profile, AppId::Bfs)
                        )
                    ),
                    "datasets" => println!(
                        "{}",
                        hpage_bench::json::datasets_json(&hpage_sim::dataset_sweep_on(
                            h,
                            &profile,
                            &AppId::GRAPH
                        ))
                    ),
                    other => {
                        eprintln!("unknown json target '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--table" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!("{}", render_table1()),
                    "2" => println!("{}", render_table2(&profile)),
                    "storage" => println!("{}", render_storage()),
                    other => {
                        eprintln!("unknown table '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = &ledger_out {
        if verbosity >= 1 {
            eprintln!("repro: rendering promotion ledger...");
        }
        let t0 = std::time::Instant::now();
        let (text, jsonl) = render_ledger(h, &profile, &AppId::GRAPH);
        h.log()
            .record_section("promotion ledger", t0.elapsed().as_secs_f64());
        println!("{text}");
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        if verbosity >= 1 {
            eprintln!("repro: per-region ledger entries written to {path}");
        }
    }

    // Simulated anything? Persist the wall-clock artifact.
    if !h.log().cells().is_empty() {
        for w in h.log().warnings() {
            eprintln!("repro: warning: {w}");
        }
        let artifact =
            hpage_bench::json::bench_repro_json(h, profile_name, run_start.elapsed().as_secs_f64());
        if let Err(e) = std::fs::write(&bench_out, artifact + "\n") {
            eprintln!("repro: cannot write {bench_out}: {e}");
            std::process::exit(1);
        }
        if verbosity >= 1 {
            eprintln!("repro: wall-clock timings written to {bench_out}");
        }
    }
}
