//! `repro` — regenerates every table and figure of the paper's
//! evaluation as terminal tables.
//!
//! ```text
//! repro --all                     # everything (scaled profile)
//! repro --figure 5                # one figure
//! repro --table 1                 # one table
//! repro --table storage           # the §3.2.1 storage arithmetic
//! HPAGE_PROFILE=test repro --all  # fast smoke run
//! HPAGE_SCALE=20 repro --figure 5 # bigger graphs
//! ```

use hpage_bench::*;
use hpage_sim::Fig9Config;
use hpage_trace::AppId;

const USAGE: &str = "usage: repro [--all] [--figure 1|2|5|6|7|8|9a|9b] [--table 1|2|storage] [--ablation] [--datasets] [--timeline] [--json 1|6|7|ablation|datasets] [--quiet|-q] [--verbose|-v]
verbosity: progress notes go to stderr; --quiet silences them, -v adds per-section timing
environment: HPAGE_PROFILE=test|scaled|paper   HPAGE_SCALE=<log2 vertices>";

/// Runs one render step, with progress (and, verbosely, timing) on
/// stderr so long `--all` runs are not silent.
fn section<F: FnOnce() -> String>(verbosity: u8, label: &str, f: F) -> String {
    if verbosity >= 1 {
        eprintln!("repro: rendering {label}...");
    }
    let t0 = std::time::Instant::now();
    let out = f();
    if verbosity >= 2 {
        eprintln!("repro: {label} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    out
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut verbosity: u8 = 1;
    args.retain(|a| match a.as_str() {
        "--quiet" | "-q" => {
            verbosity = 0;
            false
        }
        "--verbose" | "-v" => {
            verbosity = 2;
            false
        }
        _ => true,
    });
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let profile = profile_from_env();
    let sweep: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 100];
    let quick_sweep: &[u64] = &[0, 1, 4, 16, 100];

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => {
                println!("{}", section(verbosity, "table 1", render_table1));
                println!(
                    "{}",
                    section(verbosity, "table 2", || render_table2(&profile))
                );
                println!("{}", section(verbosity, "storage table", render_storage));
                println!(
                    "{}",
                    section(verbosity, "figure 1", || render_fig1(&profile, &AppId::ALL))
                );
                println!(
                    "{}",
                    section(verbosity, "figure 2", || render_fig2(
                        &profile,
                        AppId::Bfs,
                        2_000_000
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "figure 5", || render_fig5(
                        &profile,
                        &AppId::ALL,
                        sweep
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "figure 6", || render_fig6(
                        &fig6_profile(&profile),
                        &AppId::GRAPH,
                        &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "figure 7", || render_fig7(
                        &profile,
                        &AppId::GRAPH,
                        90
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "figure 8", || render_fig8(
                        &profile,
                        &AppId::GRAPH,
                        &[2, 4, 8],
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "figure 9a", || render_fig9(
                        &profile,
                        Fig9Config {
                            app_a: AppId::PageRank,
                            app_b: AppId::Mcf
                        },
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "figure 9b", || render_fig9(
                        &profile,
                        Fig9Config {
                            app_a: AppId::PageRank,
                            app_b: AppId::Sssp
                        },
                        quick_sweep
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "ablation", || render_ablation(
                        &profile,
                        AppId::Bfs
                    ))
                );
                println!(
                    "{}",
                    section(verbosity, "timeline", || render_timeline(
                        &profile,
                        AppId::Bfs
                    ))
                );
            }
            "--figure" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!("{}", render_fig1(&profile, &AppId::ALL)),
                    "2" => println!("{}", render_fig2(&profile, AppId::Bfs, 2_000_000)),
                    "5" => println!("{}", render_fig5(&profile, &AppId::ALL, sweep)),
                    "6" => println!(
                        "{}",
                        render_fig6(
                            &fig6_profile(&profile),
                            &AppId::GRAPH,
                            &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
                        )
                    ),
                    "7" => println!("{}", render_fig7(&profile, &AppId::GRAPH, 90)),
                    "8" => println!(
                        "{}",
                        render_fig8(&profile, &AppId::GRAPH, &[2, 4, 8], quick_sweep)
                    ),
                    "9a" => println!(
                        "{}",
                        render_fig9(
                            &profile,
                            Fig9Config {
                                app_a: AppId::PageRank,
                                app_b: AppId::Mcf
                            },
                            quick_sweep
                        )
                    ),
                    "9b" => println!(
                        "{}",
                        render_fig9(
                            &profile,
                            Fig9Config {
                                app_a: AppId::PageRank,
                                app_b: AppId::Sssp
                            },
                            quick_sweep
                        )
                    ),
                    other => {
                        eprintln!("unknown figure '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--ablation" => {
                println!("{}", render_ablation(&profile, AppId::Omnetpp));
                println!("{}", render_ablation(&profile, AppId::Bfs));
            }
            "--datasets" => {
                println!("{}", render_datasets(&profile, &AppId::GRAPH));
            }
            "--timeline" => {
                println!(
                    "{}",
                    section(verbosity, "timeline", || render_timeline(
                        &profile,
                        AppId::Bfs
                    ))
                );
            }
            "--json" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!(
                        "{}",
                        hpage_bench::json::fig1_json(&hpage_sim::fig1_page_sizes(
                            &profile,
                            &AppId::ALL
                        ))
                    ),
                    "6" => println!(
                        "{}",
                        hpage_bench::json::fig6_json(&hpage_sim::fig6_pcc_size(
                            &fig6_profile(&profile),
                            &AppId::GRAPH,
                            &[4, 16, 64, 128, 512]
                        ))
                    ),
                    "7" => println!(
                        "{}",
                        hpage_bench::json::fig7_json(
                            &hpage_sim::fig7_fragmentation(&profile, &AppId::GRAPH, 90),
                            90
                        )
                    ),
                    "ablation" => println!(
                        "{}",
                        hpage_bench::json::ablation_json(
                            "BFS",
                            &hpage_sim::ablation_design_choices(&profile, AppId::Bfs)
                        )
                    ),
                    "datasets" => println!(
                        "{}",
                        hpage_bench::json::datasets_json(&hpage_sim::dataset_sweep(
                            &profile,
                            &AppId::GRAPH
                        ))
                    ),
                    other => {
                        eprintln!("unknown json target '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--table" => {
                i += 1;
                let which = args.get(i).map(String::as_str).unwrap_or("");
                match which {
                    "1" => println!("{}", render_table1()),
                    "2" => println!("{}", render_table2(&profile)),
                    "storage" => println!("{}", render_storage()),
                    other => {
                        eprintln!("unknown table '{other}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
}
