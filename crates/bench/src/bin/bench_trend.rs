//! `bench_trend` — renders the hotpath bench trajectory.
//!
//! ```text
//! bench_trend                                   # print the table
//! bench_trend --experiments EXPERIMENTS.md      # splice it in place
//! ```
//!
//! `ci.sh` appends each smoke-mode `BENCH_hotpath` artifact to
//! `BENCH_history.jsonl` and runs this tool to keep the trajectory
//! section of EXPERIMENTS.md current.

use hpage_bench::trend::{parse_history, render_trajectory, splice};
use std::process::exit;

const USAGE: &str = "usage: bench_trend [--history FILE] [--experiments FILE] [--limit N]
  --history FILE      history JSONL, one hotpath artifact per line (default BENCH_history.jsonl)
  --experiments FILE  splice the table into FILE between the bench-trajectory markers
  --limit N           render only the newest N entries (run numbering stays absolute)";

fn die(msg: &str) -> ! {
    eprintln!("bench_trend: {msg}\n{USAGE}");
    exit(2)
}

fn main() {
    let mut history = String::from("BENCH_history.jsonl");
    let mut experiments: Option<String> = None;
    let mut limit: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| die("missing argument value"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--history" => history = value(&mut i),
            "--experiments" => experiments = Some(value(&mut i)),
            "--limit" => {
                limit = Some(match value(&mut i).parse() {
                    Ok(0) | Err(_) => die("--limit expects a positive number"),
                    Ok(n) => n,
                })
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0)
            }
            other => die(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let text =
        std::fs::read_to_string(&history).unwrap_or_else(|e| die(&format!("read {history}: {e}")));
    let parsed = parse_history(&text);
    for warning in &parsed.warnings {
        eprintln!("bench_trend: warning: {history}: {warning}");
    }
    let rows = parsed.rows;
    if rows.is_empty() {
        die(&format!("{history} has no parseable entries"));
    }
    // `--limit` trims the oldest entries but keeps absolute run numbers
    // by re-rendering from the full list and dropping table lines; the
    // simple route — render, then cut — would renumber. Instead, keep
    // ratios anchored on the true run 0 by always rendering everything
    // and letting limit only bound the table length.
    let table = if let Some(n) = limit {
        let full = render_trajectory(&rows);
        let mut lines: Vec<&str> = full.lines().collect();
        let data_lines = rows.len();
        if data_lines > n {
            lines.drain(lines.len() - data_lines..lines.len() - n);
        }
        lines.join("\n") + "\n"
    } else {
        render_trajectory(&rows)
    };

    match &experiments {
        Some(path) => {
            let doc =
                std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
            let out = splice(&doc, &table).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            std::fs::write(path, out).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            println!(
                "bench_trend: {} entr{} -> {path}",
                rows.len(),
                if rows.len() == 1 { "y" } else { "ies" }
            );
        }
        None => print!("{table}"),
    }
}
