//! `hpsim` — run one simulation configuration and print its report.
//!
//! ```text
//! hpsim --app bfs --policy pcc --budget-pct 4
//! hpsim --app canneal --policy linux --frag 90
//! hpsim --app pr --policy pcc --threads 4 --selection round-robin
//! hpsim --app sssp --policy pcc --schedule-out run.sched
//! hpsim --app sssp --policy replay --schedule-in run.sched
//! hpsim --app bfs --trace-out bfs.hpt      # dump the access trace
//! hpsim --app bfs --policy pcc --ledger    # predicted-vs-realized table
//! hpsim --app bfs --chrome-trace t.json    # spans for chrome://tracing
//! ```
//!
//! Profile selection follows `repro`: `HPAGE_PROFILE=test|scaled|paper`,
//! `HPAGE_SCALE=<log2 vertices>`.

use hpage_bench::profile_from_env;
use hpage_faults::FaultPlan;
use hpage_os::{read_schedule, write_schedule, DegradationConfig, PromotionBudget};
use hpage_perf::{fmt_pct, fmt_speedup, TextTable};
use hpage_sim::{JsonlSink, PolicyChoice, ProcessSpec, SimReport, Simulation, Tee};
use hpage_telemetry::TelemetryRecorder;
use hpage_trace::{
    instantiate, AnyWorkload, AppId, Dataset, Hpt2Writer, MmapTrace, RecordedWorkload, TraceWriter,
    Workload,
};
use hpage_types::{derive_seed, NestedConfig, PccPlacement, ProcessId, PromotionPolicyKind};
use std::fs::File;
use std::io::BufWriter;
use std::process::exit;

const USAGE: &str = "usage: hpsim --app <bfs|sssp|pr|canneal|omnetpp|xalancbmk|dedup|mcf>
             [--dataset kronecker|twitter|web] [--policy base|ideal|linux|hawkeye|pcc|victim|replay]
             [--selection highest-frequency|round-robin] [--demotion] [--bias <pid,...>]
             [--threads N] [--frag PCT] [--budget-pct PCT] [--seed N] [--max-accesses N]
             [--nested] [--pcc-placement guest|host|both|none]
             [--jobs N|-j N] [--sim-threads N] [--schedule-out FILE] [--schedule-in FILE] [--trace-out FILE]
             [--trace-in FILE] [--trace-format hpt1|hpt2] [--mmap]
             [--trace-info FILE] [--events FILE] [--metrics FILE]
             [--ledger] [--chrome-trace FILE] [--faults FILE] [--no-degrade]
             [--audit] [--throughput] [--quiet|-q] [--verbose|-v]
parallelism: --jobs 2+ runs the 4KB baseline concurrently with the
             instrumented run (default: available cores; the printed
             report is byte-identical at any N); --sim-threads N shards
             the simulation loop itself across N worker threads with
             barrier-synchronized intervals (default 1; reports and
             event streams are byte-identical at any N)
virtualization: --nested runs the workload as a VM under nested (2D)
             translation: every guest-walk step is host-translated through
             per-VM host page tables, with 2D structure caches and a nested
             TLB; --pcc-placement picks which dimension(s) run PCC-guided
             promotion (default both; the printed baseline stays native 4KB,
             so the speedup column reads as nested-vs-native). repro --virt
             runs the full four-placement ablation
tracing:     --trace-out dumps the access stream; --trace-format picks the
             container (hpt2, the default, is blocked with per-block restart
             points and checksums; hpt1 is the legacy flat delta stream);
             --trace-in replays a recorded trace, auto-detecting the format;
             --mmap replays an HPT2 trace straight out of the file mapping
             (zero-copy, no in-memory decode) — reports are byte-identical
             to the in-memory path
flight recorder: --events streams every simulation event (TLB hits, walks,
             faults, PCC updates, promotions, shootdowns, interval snapshots)
             as JSON Lines; --metrics writes the per-interval series plus the
             telemetry registry (counters, gauges, histograms) as JSONL
telemetry:   --ledger records predicted vs realized walk savings for every
             promoted region and prints the attribution table with a
             prediction_accuracy summary; --chrome-trace writes parent/child
             spans (walk -> PCC update, promotion -> shootdown/compaction) as
             chrome-trace-viewer JSON (load in chrome://tracing or Perfetto)
robustness:  --faults loads a JSON fault plan (OOM windows, fragmentation
             shocks, compaction stalls, PCC resets, shootdown spikes) and
             enables graceful degradation (--no-degrade opts out, for
             A/B runs); --audit cross-checks OS/TLB/PCC invariants every
             interval and exits 1 on any violation
throughput:  --throughput times the instrumented run and appends a
             simulator accesses/sec line (compare against BENCH_hotpath.json)
verbosity:   --quiet prints the results table only; -v adds the per-interval series
environment: HPAGE_PROFILE=test|scaled|paper   HPAGE_SCALE=<log2 vertices>";

/// Largest accepted `--jobs` value — far above any real machine, small
/// enough to catch typos like `--jobs 10000`.
const MAX_JOBS: usize = 512;

fn die(msg: &str) -> ! {
    eprintln!("hpsim: {msg}\n{USAGE}");
    exit(2)
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_JOBS))
        .unwrap_or(1)
}

/// Runtime failure (not a usage error): no usage text, exit 1.
fn fail(msg: &str) -> ! {
    eprintln!("hpsim: {msg}");
    exit(1)
}

struct Options {
    app: AppId,
    dataset: Dataset,
    policy: String,
    selection: PromotionPolicyKind,
    demotion: bool,
    bias: Vec<ProcessId>,
    threads: u32,
    frag: u8,
    budget_pct: Option<u64>,
    seed: u64,
    max_accesses: Option<u64>,
    jobs: usize,
    sim_threads: usize,
    schedule_out: Option<String>,
    schedule_in: Option<String>,
    trace_out: Option<String>,
    trace_in: Option<String>,
    trace_format: String,
    mmap: bool,
    trace_info: Option<String>,
    events: Option<String>,
    metrics: Option<String>,
    nested: bool,
    pcc_placement: Option<PccPlacement>,
    ledger: bool,
    chrome_trace: Option<String>,
    faults: Option<String>,
    no_degrade: bool,
    audit: bool,
    throughput: bool,
    /// 0 = quiet (results table only), 1 = default, 2 = verbose.
    verbosity: u8,
}

fn parse_args() -> Options {
    let mut opts = Options {
        app: AppId::Bfs,
        dataset: Dataset::Kronecker,
        policy: "pcc".into(),
        selection: PromotionPolicyKind::HighestFrequency,
        demotion: false,
        bias: Vec::new(),
        threads: 1,
        frag: 0,
        budget_pct: None,
        seed: 0xC0FFEE,
        max_accesses: None,
        jobs: default_jobs(),
        sim_threads: 1,
        schedule_out: None,
        schedule_in: None,
        trace_out: None,
        trace_in: None,
        trace_format: "hpt2".into(),
        mmap: false,
        trace_info: None,
        events: None,
        metrics: None,
        nested: false,
        pcc_placement: None,
        ledger: false,
        chrome_trace: None,
        faults: None,
        no_degrade: false,
        audit: false,
        throughput: false,
        verbosity: 1,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| die("missing argument value"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                opts.app = match value(&mut i).to_lowercase().as_str() {
                    "bfs" => AppId::Bfs,
                    "sssp" => AppId::Sssp,
                    "pr" | "pagerank" => AppId::PageRank,
                    "canneal" => AppId::Canneal,
                    "omnetpp" => AppId::Omnetpp,
                    "xalancbmk" => AppId::Xalancbmk,
                    "dedup" => AppId::Dedup,
                    "mcf" => AppId::Mcf,
                    other => die(&format!("unknown app '{other}'")),
                }
            }
            "--dataset" => {
                opts.dataset = match value(&mut i).to_lowercase().as_str() {
                    "kronecker" | "kron" => Dataset::Kronecker,
                    "twitter" => Dataset::Twitter,
                    "web" | "sd1" => Dataset::Web,
                    other => die(&format!("unknown dataset '{other}'")),
                }
            }
            "--policy" => opts.policy = value(&mut i).to_lowercase(),
            "--selection" => {
                opts.selection = match value(&mut i).to_lowercase().as_str() {
                    "highest-frequency" | "hf" => PromotionPolicyKind::HighestFrequency,
                    "round-robin" | "rr" => PromotionPolicyKind::RoundRobin,
                    other => die(&format!("unknown selection '{other}'")),
                }
            }
            "--demotion" => opts.demotion = true,
            "--bias" => {
                opts.bias = value(&mut i)
                    .split(',')
                    .map(|t| ProcessId(t.trim().parse().unwrap_or_else(|_| die("bad --bias pid"))))
                    .collect()
            }
            "--threads" => {
                opts.threads = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --threads"))
            }
            "--frag" => opts.frag = value(&mut i).parse().unwrap_or_else(|_| die("bad --frag")),
            "--budget-pct" => {
                opts.budget_pct = Some(
                    value(&mut i)
                        .parse()
                        .unwrap_or_else(|_| die("bad --budget-pct")),
                )
            }
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| die("bad --seed")),
            "--max-accesses" => {
                opts.max_accesses = Some(
                    value(&mut i)
                        .parse()
                        .unwrap_or_else(|_| die("bad --max-accesses")),
                )
            }
            "--jobs" | "-j" => {
                // Zero, garbage, and absurd values are usage errors
                // (exit 2), never a panic or a silent clamp.
                let raw = value(&mut i);
                opts.jobs = match raw.parse::<usize>() {
                    Ok(0) => die("--jobs must be at least 1"),
                    Ok(n) if n > MAX_JOBS => {
                        die(&format!("--jobs {n} is out of range (max {MAX_JOBS})"))
                    }
                    Ok(n) => n,
                    Err(_) => die(&format!("--jobs expects a number, got '{raw}'")),
                }
            }
            "--sim-threads" => {
                let raw = value(&mut i);
                opts.sim_threads = match raw.parse::<usize>() {
                    Ok(0) => die("--sim-threads must be at least 1"),
                    Ok(n) if n > MAX_JOBS => die(&format!(
                        "--sim-threads {n} is out of range (max {MAX_JOBS})"
                    )),
                    Ok(n) => n,
                    Err(_) => die(&format!("--sim-threads expects a number, got '{raw}'")),
                }
            }
            "--schedule-out" => opts.schedule_out = Some(value(&mut i)),
            "--schedule-in" => opts.schedule_in = Some(value(&mut i)),
            "--trace-out" => opts.trace_out = Some(value(&mut i)),
            "--trace-in" => opts.trace_in = Some(value(&mut i)),
            "--trace-format" => {
                let v = value(&mut i);
                if v != "hpt1" && v != "hpt2" {
                    die(&format!("--trace-format must be hpt1 or hpt2, got '{v}'"));
                }
                opts.trace_format = v;
            }
            "--mmap" => opts.mmap = true,
            "--nested" => opts.nested = true,
            "--pcc-placement" => {
                let raw = value(&mut i);
                opts.pcc_placement = Some(
                    PccPlacement::parse(&raw)
                        .unwrap_or_else(|e| die(&format!("--pcc-placement {raw}: {e}"))),
                );
            }
            "--trace-info" => opts.trace_info = Some(value(&mut i)),
            "--events" => opts.events = Some(value(&mut i)),
            "--metrics" => opts.metrics = Some(value(&mut i)),
            "--ledger" => opts.ledger = true,
            "--chrome-trace" => opts.chrome_trace = Some(value(&mut i)),
            "--faults" => opts.faults = Some(value(&mut i)),
            "--no-degrade" => opts.no_degrade = true,
            "--audit" => opts.audit = true,
            "--throughput" => opts.throughput = true,
            "--quiet" | "-q" => opts.verbosity = 0,
            "--verbose" | "-v" => opts.verbosity = 2,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0)
            }
            other => die(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    opts
}

enum AnyOrRecorded {
    Builtin(AnyWorkload),
    Recorded(RecordedWorkload),
    /// `--mmap`: replayed straight out of the file mapping.
    Mapped(MmapTrace),
}

// The baseline run may execute on a worker thread (`--jobs 2+`), reading
// the same workload as the instrumented run on the main thread.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<AnyOrRecorded>();
};

impl AnyOrRecorded {
    fn as_workload(&self) -> &dyn Workload {
        match self {
            AnyOrRecorded::Builtin(w) => w,
            AnyOrRecorded::Recorded(w) => w,
            AnyOrRecorded::Mapped(w) => w,
        }
    }
}

fn trace_info(path: &str) -> ! {
    use hpage_trace::ReuseAnalyzer;
    let file = File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
    let w = RecordedWorkload::from_reader(path, std::io::BufReader::new(file))
        .unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
    let mut analyzer = ReuseAnalyzer::new();
    analyzer.observe_all(w.trace());
    let (friendly, hubs, low) = analyzer.class_counts();
    let total = (friendly + hubs + low).max(1);
    let mut t = TextTable::new(["property", "value"]);
    t.row(["records".into(), w.len().to_string()]);
    t.row([
        "footprint".into(),
        format!("{} KiB", w.footprint_bytes() >> 10),
    ]);
    t.row([
        "2MiB regions touched".into(),
        (w.footprint_bytes().div_ceil(2 << 20)).to_string(),
    ]);
    t.row(["contiguous extents".into(), w.regions().len().to_string()]);
    t.row([
        "TLB-friendly pages".into(),
        format!(
            "{friendly} ({:.1}%)",
            100.0 * friendly as f64 / total as f64
        ),
    ]);
    t.row([
        "HUB pages".into(),
        format!("{hubs} ({:.1}%)", 100.0 * hubs as f64 / total as f64),
    ]);
    t.row([
        "low-reuse pages".into(),
        format!("{low} ({:.1}%)", 100.0 * low as f64 / total as f64),
    ]);
    t.row([
        "HUB regions".into(),
        analyzer.hub_regions().len().to_string(),
    ]);
    println!("{path}\n\n{t}");
    exit(0)
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.trace_info {
        trace_info(path);
    }
    let profile = profile_from_env();
    let holder = match &opts.trace_in {
        Some(path) if opts.mmap => {
            let w = MmapTrace::open(format!("mapped:{path}"), std::path::Path::new(path))
                .unwrap_or_else(|e| die(&format!("mmap {path}: {e} (--mmap needs HPT2)")));
            AnyOrRecorded::Mapped(w)
        }
        Some(path) => {
            let file = File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            let w = RecordedWorkload::from_reader(
                format!("recorded:{path}"),
                std::io::BufReader::new(file),
            )
            .unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
            AnyOrRecorded::Recorded(w)
        }
        None => AnyOrRecorded::Builtin(instantiate(
            opts.app,
            opts.dataset,
            profile.workloads,
            opts.seed,
        )),
    };
    let workload = holder.as_workload();
    let footprint = workload.footprint_bytes();

    if let Some(path) = &opts.trace_out {
        let file = File::create(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
        let cap = opts
            .max_accesses
            .or(profile.max_accesses_per_core)
            .unwrap_or(u64::MAX);
        let trace = workload.trace().take(cap as usize);
        let n = if opts.trace_format == "hpt1" {
            let mut writer = TraceWriter::new(BufWriter::new(file))
                .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            writer
                .write_all(trace)
                .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            let n = writer.records();
            writer
                .finish()
                .unwrap_or_else(|e| die(&format!("flush {path}: {e}")));
            n
        } else {
            let mut writer = Hpt2Writer::new(BufWriter::new(file))
                .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            writer
                .write_all(trace)
                .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            let n = writer.records();
            writer
                .finish()
                .unwrap_or_else(|e| die(&format!("flush {path}: {e}")));
            n
        };
        println!(
            "wrote {n} accesses of {} to {path} ({})",
            workload.name(),
            opts.trace_format
        );
        return;
    }

    let policy = match opts.policy.as_str() {
        "base" | "4k" => PolicyChoice::BasePages,
        "ideal" | "2m" => PolicyChoice::IdealHuge,
        "linux" | "thp" => PolicyChoice::LinuxThp,
        "hawkeye" => PolicyChoice::HawkEye,
        "pcc" => PolicyChoice::Pcc {
            selection: opts.selection,
            demotion: opts.demotion,
            bias: opts.bias.clone(),
        },
        "victim" => PolicyChoice::VictimCache { entries: 128 },
        "replay" => {
            let path = opts
                .schedule_in
                .as_ref()
                .unwrap_or_else(|| die("--policy replay needs --schedule-in"));
            let file = File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            let schedule =
                read_schedule(file).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
            PolicyChoice::Replay(schedule)
        }
        other => die(&format!("unknown policy '{other}'")),
    };
    if opts.pcc_placement.is_some() && !opts.nested {
        die("--pcc-placement requires --nested");
    }
    let placement = opts.pcc_placement.unwrap_or_default();
    // The placement gates each dimension's promotion engine: with the
    // guest dimension disabled the requested guest policy is overridden
    // to base pages, exactly as `repro --virt` does per ablation cell.
    let policy = if opts.nested && !placement.guest_enabled() {
        if opts.verbosity >= 1 && !matches!(policy, PolicyChoice::BasePages) {
            eprintln!("hpsim: --pcc-placement {placement} disables the guest dimension; guest runs base pages");
        }
        PolicyChoice::BasePages
    } else {
        policy
    };

    let sized = profile.clone().sized_for(footprint);
    let timing = sized.system.timing;
    let mut sim = Simulation::new(sized.system.clone(), policy);
    sim = sim.with_sim_threads(opts.sim_threads);
    if opts.nested {
        sim = sim.with_nested(NestedConfig::typical().with_placement(placement));
    }
    if let Some(n) = opts.max_accesses.or(profile.max_accesses_per_core) {
        sim = sim.with_max_accesses_per_core(n);
    }
    if opts.frag > 0 {
        // The fragmenter gets its own derived stream: feeding it the raw
        // workload seed would alias the two RNG sequences.
        sim = sim.with_fragmentation(opts.frag, derive_seed(opts.seed, "frag"));
    }
    if let Some(pct) = opts.budget_pct {
        sim = sim.with_budget(PromotionBudget::percent_of_footprint(pct, footprint));
    }
    if let Some(path) = &opts.faults {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
        let plan =
            FaultPlan::from_json(&text).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
        sim = sim.with_faults(plan);
        if !opts.no_degrade {
            sim = sim.with_degradation(DegradationConfig::default());
        }
    }
    if opts.audit {
        sim = sim.with_audit();
    }
    if opts.ledger {
        sim = sim.with_ledger();
    }

    // Baseline for the speedup column.
    let mut base_sim = Simulation::new(sized.system.clone(), PolicyChoice::BasePages)
        .with_sim_threads(opts.sim_threads);
    if let Some(n) = opts.max_accesses.or(profile.max_accesses_per_core) {
        base_sim = base_sim.with_max_accesses_per_core(n);
    }
    // `spec` captures the concrete holder (not `&dyn Workload`) so the
    // closure stays `Send` for the parallel baseline below.
    let spec = || {
        [ProcessSpec::with_threads(
            holder.as_workload(),
            opts.threads,
        )]
    };
    let run_base = || base_sim.run(&spec());
    // The instrumented run streams the flight recorder when requested;
    // the baseline run is never recorded (it is only a speedup anchor).
    // `--metrics` and `--chrome-trace` both ride on the telemetry
    // recorder; `--events` keeps its raw JSONL sink, teed when both are
    // asked for.
    let want_telemetry = opts.metrics.is_some() || opts.chrome_trace.is_some();
    type EventCounts = (u64, Vec<(String, u64)>);
    type PolicyOut = (
        SimReport,
        Option<EventCounts>,
        Option<TelemetryRecorder>,
        std::time::Duration,
    );
    let run_policy = || -> PolicyOut {
        let t0 = std::time::Instant::now();
        match (&opts.events, want_telemetry) {
            (Some(path), telemetry) => {
                let file = File::create(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
                // Shared IO-error counter: the sink counts write/flush
                // failures, the telemetry recorder mirrors the count
                // into the `--metrics` snapshot as `sink.io_errors`.
                let sink_errors = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
                let sink = JsonlSink::new(BufWriter::new(file))
                    .with_path(path.as_str())
                    .with_error_counter(std::sync::Arc::clone(&sink_errors));
                let mut rec = Tee(
                    sink,
                    telemetry.then(|| {
                        TelemetryRecorder::new().with_sink_error_counter(sink_errors.clone())
                    }),
                );
                let report = sim
                    .try_run_recorded(&spec(), &mut rec)
                    .unwrap_or_else(|e| fail(&format!("simulation failed: {e}")));
                let wall = t0.elapsed();
                let Tee(sink, telem) = rec;
                let total = sink.total();
                let counts = sink
                    .finish()
                    .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
                let counts = counts
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                (report, Some((total, counts)), telem, wall)
            }
            (None, true) => {
                let mut telem = TelemetryRecorder::new();
                let report = sim
                    .try_run_recorded(&spec(), &mut telem)
                    .unwrap_or_else(|e| fail(&format!("simulation failed: {e}")));
                (report, None, Some(telem), t0.elapsed())
            }
            (None, false) => {
                let report = sim
                    .try_run(&spec())
                    .unwrap_or_else(|e| fail(&format!("simulation failed: {e}")));
                (report, None, None, t0.elapsed())
            }
        }
    };
    // Both runs are deterministic in their configuration, so overlapping
    // them changes wall-clock only, never the printed report.
    let (base, (report, event_counts, mut telemetry, policy_wall)) = if opts.jobs > 1 {
        std::thread::scope(|scope| {
            let baseline = scope.spawn(run_base);
            let policy_out = run_policy();
            (baseline.join().expect("baseline worker"), policy_out)
        })
    } else {
        (run_base(), run_policy())
    };
    // Fold the ledger's outcome accounting into the telemetry registry
    // so --metrics surfaces prediction_accuracy alongside the counters.
    if let (Some(telem), Some(ledger)) = (telemetry.as_mut(), report.ledger.as_ref()) {
        telem.ingest_ledger(ledger);
    }

    if opts.verbosity >= 1 {
        println!(
            "{} on {} ({} MiB footprint, {} threads, {}% fragmented)\n",
            workload.name(),
            opts.dataset.name(),
            footprint >> 20,
            opts.threads,
            opts.frag
        );
    }
    let mut t = TextTable::new(["metric", "baseline (4KB)", &report.policy]);
    let a = &report.aggregate;
    let b = &base.aggregate;
    t.row([
        "accesses".into(),
        b.accesses.to_string(),
        a.accesses.to_string(),
    ]);
    t.row([
        "PTW rate".into(),
        fmt_pct(b.walk_ratio()),
        fmt_pct(a.walk_ratio()),
    ]);
    t.row([
        "faults (base/huge)".into(),
        format!("{}/{}", b.faults_base, b.faults_huge),
        format!("{}/{}", a.faults_base, a.faults_huge),
    ]);
    t.row(["promotions".into(), "0".into(), a.promotions.to_string()]);
    t.row(["demotions".into(), "0".into(), a.demotions.to_string()]);
    if opts.nested {
        t.row([
            "host promotions".into(),
            "0".into(),
            a.host_promotions.to_string(),
        ]);
        t.row([
            "host shootdowns".into(),
            "0".into(),
            a.host_shootdowns.to_string(),
        ]);
        t.row([
            "2D refs/walk".into(),
            "-".into(),
            format!("{:.3}", a.walk_levels as f64 / a.walks.max(1) as f64),
        ]);
    }
    t.row([
        "huge pages at end".into(),
        base.huge_pages_at_end.to_string(),
        report.huge_pages_at_end.to_string(),
    ]);
    t.row([
        "memory bloat".into(),
        format!("{} KiB", base.bloat_bytes.iter().sum::<u64>() >> 10),
        format!("{} KiB", report.bloat_bytes.iter().sum::<u64>() >> 10),
    ]);
    t.row([
        "speedup".into(),
        fmt_speedup(1.0),
        fmt_speedup(report.speedup_over(&base, &timing)),
    ]);
    println!("{t}");

    if opts.throughput {
        // Simulator (host) throughput of the instrumented run, for
        // comparison against the BENCH_hotpath.json trajectory. With
        // --jobs 2+ the 4KB baseline runs concurrently and contends for
        // the machine; use --jobs 1 for an uncontended measurement.
        let secs = policy_wall.as_secs_f64().max(1e-9);
        println!(
            "throughput: {} accesses in {secs:.3} s = {:.0} accesses/sec ({})",
            report.aggregate.accesses,
            report.aggregate.accesses as f64 / secs,
            report.policy
        );
    }

    if opts.verbosity >= 2 && !report.interval_series.is_empty() {
        let mut t = TextTable::new([
            "interval",
            "PTW rate",
            "L1 hit",
            "L2 hit",
            "promos",
            "demos",
            "PCC occ",
            "huge",
            "bloat KiB",
        ]);
        for (i, r) in report.interval_series.rows().iter().enumerate() {
            t.row([
                i.to_string(),
                fmt_pct(r.walk_rate),
                fmt_pct(r.l1_hit_rate),
                fmt_pct(r.l2_hit_rate),
                r.promotions.to_string(),
                r.demotions.to_string(),
                r.pcc_occupancy.to_string(),
                r.huge_pages_resident.to_string(),
                (r.bloat_bytes >> 10).to_string(),
            ]);
        }
        println!("per-interval series ({})\n{t}", report.policy);
    }

    if let Some((total, counts)) = &event_counts {
        if opts.verbosity >= 1 {
            let mut t = TextTable::new(["event", "count"]);
            for (kind, n) in counts {
                t.row([kind.clone(), n.to_string()]);
            }
            println!(
                "flight recorder: {total} events -> {}\n{t}",
                opts.events.as_deref().unwrap_or_default()
            );
        }
    }

    // The attribution table is the artifact --ledger asks for; print it
    // even at --quiet (CI greps its prediction_accuracy line).
    if let Some(ledger) = &report.ledger {
        println!(
            "promotion ledger ({})\n{}",
            report.policy,
            ledger.render_table()
        );
    }

    if let Some(telem) = &telemetry {
        if let Some(path) = &opts.chrome_trace {
            std::fs::write(path, telem.chrome_trace_json())
                .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            if opts.verbosity >= 1 {
                println!(
                    "wrote {} spans to {path} (load in chrome://tracing or ui.perfetto.dev)",
                    telem.spans().len()
                );
            }
        }
        if opts.verbosity >= 2 {
            println!("{}", telem.interval_summary());
            println!(
                "telemetry registry\n{}",
                telem.metrics_snapshot().render_text()
            );
        }
    }

    if let Some(path) = &opts.metrics {
        let file = File::create(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
        use std::io::Write;
        let mut w = BufWriter::new(file);
        let telem = telemetry.as_ref().expect("--metrics attaches telemetry");
        w.write_all(report.interval_series.to_jsonl().as_bytes())
            .and_then(|()| w.write_all(telem.metrics_snapshot().to_jsonl().as_bytes()))
            .and_then(|()| w.flush())
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        if opts.verbosity >= 1 {
            println!(
                "wrote {} interval metric rows and the telemetry registry to {path}",
                report.interval_series.len()
            );
        }
    }

    if let Some(path) = &opts.schedule_out {
        let file = File::create(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
        write_schedule(&report.schedule, BufWriter::new(file))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!(
            "wrote {} promotion events to {path} (replay with --policy replay --schedule-in)",
            report.schedule.len()
        );
    }

    if let Some(stats) = &report.fault_stats {
        if opts.verbosity >= 1 {
            let mut t = TextTable::new(["fault", "count"]);
            t.row([
                "faulted intervals".into(),
                stats.faulted_intervals.to_string(),
            ]);
            t.row(["OOM intervals".into(), stats.oom_intervals.to_string()]);
            t.row([
                "compaction stalls".into(),
                stats.compaction_stall_intervals.to_string(),
            ]);
            t.row([
                "fragmentation shocks".into(),
                stats.shocks_fired.to_string(),
            ]);
            t.row(["PCC resets".into(), stats.pcc_resets.to_string()]);
            t.row([
                "shootdown spikes".into(),
                stats.shootdown_spike_intervals.to_string(),
            ]);
            println!(
                "injected faults ({})\n{t}",
                opts.faults.as_deref().unwrap_or_default()
            );
        }
    }

    if opts.audit {
        if report.audit_violations.is_empty() {
            if opts.verbosity >= 1 {
                println!("audit: all invariants held every interval");
            }
        } else {
            eprintln!(
                "audit: {} invariant violation(s):",
                report.audit_violations.len()
            );
            for (interval, violation) in &report.audit_violations {
                eprintln!("  interval {interval}: {violation}");
            }
            exit(1);
        }
    }
}
