//! Golden-fixture diff test for the hot-path hasher swap.
//!
//! `tests/golden/fig1_test.txt` was captured at the commit *before* the
//! page-table maps moved from SipHash `HashMap` to the vendored
//! [`FxHashMap`](hpage_types::FxHashMap) (and before the array-backed
//! PMD/PTE levels, chunked trace generation, and derived TLB counters
//! landed). Reproducing it byte-for-byte proves none of those changes
//! leak into figure output: hashing and layout may only affect map
//! iteration order, and every iteration that reaches an output must be
//! sorted first.
//!
//! Regenerate (only after an *intentional* semantic change):
//!
//! ```text
//! cargo run --release -p hpage-bench --bin repro -- --figure 1 -j 1
//! ```
//! with `HPAGE_PROFILE=test`, keeping everything up to (not including)
//! the section separator blank line.

use hpage_bench::render_fig1;
use hpage_sim::{Harness, SimProfile};
use hpage_trace::AppId;

#[test]
fn fig1_matches_committed_golden() {
    let got = render_fig1(&Harness::sequential(), &SimProfile::test(), &AppId::ALL);
    let want = include_str!("golden/fig1_test.txt");
    assert!(
        got == want,
        "fig1 output drifted from the committed golden fixture\n\
         --- expected ---\n{want}\n--- got ---\n{got}"
    );
}
