//! Golden-fixture diff test for the nested (2D) translation ablation.
//!
//! `tests/golden/virt_test.txt` pins the full `repro --virt` section —
//! per-VM rows, placement geomeans, and the verdict line — under the
//! `test` profile at `--sim-threads 1`. Byte-for-byte reproduction
//! proves the 2D walker, the per-VM host dimension, and the placement
//! gating stay deterministic across refactors; the FHPM ordering
//! (`both` beating either single placement) is additionally asserted
//! programmatically so a regenerated fixture can never silently encode
//! a regression of the paper's claim.
//!
//! Regenerate (only after an *intentional* semantic change):
//!
//! ```text
//! HPAGE_PROFILE=test cargo run --release -p hpage-bench --bin repro -- --virt -j 1 -q
//! ```
//! keeping everything up to (not including) the trailing blank line.

use hpage_bench::render_virt;
use hpage_sim::{Harness, SimProfile};

#[test]
fn virt_matches_committed_golden() {
    let (got, json) = render_virt(&Harness::sequential(), &SimProfile::test(), 1);
    // The claim itself, independent of fixture bytes.
    assert!(
        got.contains("verdict: PCCs in both dimensions beat either dimension alone"),
        "FHPM ordering regressed:\n{got}"
    );
    hpage_obs::json::assert_json_shape(&json);
    let want = include_str!("golden/virt_test.txt");
    assert!(
        got == want,
        "virt output drifted from the committed golden fixture\n\
         --- expected ---\n{want}\n--- got ---\n{got}"
    );
}
