//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, dependency-free bench harness covering
//! the slice of the `criterion` API its benches use: benchmark groups,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: every sample times `iters_per_sample` calls of
//! the routine with `std::time::Instant` and the harness reports the
//! median, minimum, and mean per-iteration time (plus throughput when
//! configured). There is no warm-up analysis, outlier rejection, or
//! HTML report — output is one summary line per benchmark, which is
//! enough to compare runs of this repository's benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput units attributed to one iteration of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Times one routine; handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-sample wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, &mut f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.run_one(&name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        // One untimed call to warm caches and pick an iteration count
        // that keeps fast routines above timer resolution.
        let warm_start = Instant::now();
        b.sample_count = 1;
        f(&mut b);
        let warm = warm_start.elapsed();
        let per_iter = warm.max(Duration::from_nanos(1));
        b.iters_per_sample = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        b.sample_count = self.sample_size;
        f(&mut b);
        self.criterion.report(&self.name, id, &b, self.throughput);
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// One benchmark's measured summary, captured alongside the printed
/// report so custom `harness = false` mains can persist results (the
/// real criterion writes `target/criterion/*/estimates.json`; this
/// stub exposes the numbers programmatically instead).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// The benchmark group's name.
    pub group: String,
    /// The benchmark's id within its group.
    pub id: String,
    /// Fastest observed per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Elements per second at the median, when an element throughput
    /// was declared for the benchmark.
    pub elems_per_sec: Option<f64>,
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored; the
    /// harness tolerates cargo-bench's `--bench` style flags).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Measured summaries of every benchmark run so far, in execution
    /// order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    fn report(&mut self, group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
        let mut per_iter_ns: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
            .collect();
        per_iter_ns.sort_by(|a, c| a.total_cmp(c));
        if per_iter_ns.is_empty() {
            return;
        }
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let mut elems_per_sec = None;
        let tput = match throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                let eps = n as f64 * 1e9 / median;
                elems_per_sec = Some(eps);
                format!("  thrpt: {eps:>12.0} elem/s")
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  thrpt: {:>12.0} B/s", n as f64 * 1e9 / median)
            }
            _ => String::new(),
        };
        self.results.push(BenchResult {
            group: group.to_string(),
            id: id.to_string(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            elems_per_sec,
        });
        println!(
            "{group}/{id:<40} time: [min {} median {} mean {}]{tput}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles bench functions into one runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("add", |b| b.iter(|| 1u64 + 2));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn results_are_captured() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_function("f", |b| b.iter(|| 1u64 + 1));
        g.finish();
        let r = c.results();
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].group.as_str(), r[0].id.as_str()), ("g", "f"));
        assert!(r[0].min_ns <= r[0].median_ns);
        assert!(r[0].elems_per_sec.is_some());
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").id, "f/p");
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
    }
}
