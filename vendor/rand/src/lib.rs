//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, dependency-free implementation of the
//! slice of the `rand 0.9` API it actually uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::random`] /
//! [`Rng::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed. It is
//! **not** the ChaCha12 generator the real `StdRng` wraps, so absolute
//! random sequences differ from upstream `rand`; everything in this
//! repository only relies on determinism and statistical quality, not
//! on a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values sampleable from the "standard" distribution (uniform over the
/// type's natural domain; `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Values sampleable uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws one value in `[lo, hi)` from `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (uniform bits for
    /// integers and `bool`, uniform `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformSample + PartialOrd>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_uniform(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_samples {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl UniformSample for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_samples!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* (Blackman &
    /// Vigna), seeded via SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding random reordering to slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3u64..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
        for _ in 0..100 {
            let v = rng.random_range(0..100u8);
            assert!(v < 100);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u64> = (0..64).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should not be identity for 64 elems");
        // Deterministic: same seed, same permutation.
        let mut w: Vec<u64> = (0..64).collect();
        w.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(v, w);
    }
}
