//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, dependency-free property-testing
//! harness covering the slice of the `proptest 1.x` API it actually
//! uses: the [`proptest!`] macro with `pat in strategy` arguments and
//! an optional `#![proptest_config(..)]` header, range / tuple /
//! [`collection::vec`] / [`collection::hash_set`] / [`any`]
//! strategies, and the `prop_assert!` family.
//!
//! Unlike real proptest there is no shrinking: each test runs
//! [`ProptestConfig::cases`] deterministic cases (seeded from the test
//! name and case index), and a failing case panics with the ordinary
//! assertion message. Deterministic seeding means failures reproduce
//! exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::ops::Range;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a hash of a string, used to give each property its own seed
/// stream. `const` so the macro can evaluate it at compile time.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a natural "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy over a type's whole domain (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy producing `Vec`s; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s; see [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A strategy for `HashSet<S::Value>` with a size drawn from
    /// `size` (best effort: gives up growing after repeated duplicate
    /// draws, but never returns fewer than `size.start` elements as
    /// long as the element domain is large enough).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.clone().sample(rng);
            let mut out = HashSet::new();
            let mut misses = 0usize;
            while out.len() < want && misses < 64 + want * 16 {
                if !out.insert(self.elem.sample(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

/// Namespace mirror matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                const __SEED: u64 = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::new(
                        __SEED ^ (__case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

// Re-exports used by the macro expansion (kept at the root so
// `$crate::Strategy` and `$crate::TestRng` resolve).
const _: () = {
    fn _surface_check(rng: &mut TestRng) {
        let _: u64 = (0u64..10).sample(rng);
        let _: (u32, bool) = ((0u32..4), any::<bool>()).sample(rng);
        let _: Vec<u8> = collection::vec(0u8..3, 1..5).sample(rng);
        let _: HashSet<u64> = collection::hash_set(0u64..512, 1..64).sample(rng);
    }
};

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_sample_in_domain() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let (a, b, c) = Strategy::sample(&((0u64..64), any::<bool>(), (0u8..3)), &mut rng);
            assert!(a < 64);
            let _ = b;
            assert!(c < 3);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = Strategy::sample(&prop::collection::vec(0u64..64, 1..600), &mut rng);
            assert!(!v.is_empty() && v.len() < 600);
            let s = Strategy::sample(&prop::collection::hash_set(0u64..512, 1..64), &mut rng);
            assert!(!s.is_empty() && s.len() < 64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(77);
        let mut b = TestRng::new(77);
        for _ in 0..50 {
            assert_eq!(
                Strategy::sample(&(0u64..(1 << 48)), &mut a),
                Strategy::sample(&(0u64..(1 << 48)), &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_smoke(x in 0u64..100, flips in prop::collection::vec(any::<bool>(), 1..10)) {
            prop_assert!(x < 100);
            prop_assert!(!flips.is_empty());
            prop_assert_eq!(x, x);
            prop_assert_ne!(flips.len(), 0);
        }
    }
}
