//! # hpage — huge-page selection with a Promotion Candidate Cache
//!
//! A from-scratch Rust reproduction of *"Architectural Support for
//! Optimizing Huge Page Selection Within the OS"* (MICRO 2023): the
//! promotion candidate cache (PCC) hardware structure, the TLB/page-table
//! substrate it plugs into, an OS memory-management simulator with the
//! Linux THP / khugepaged / HawkEye baselines, trace-generating workloads,
//! and the experiment drivers that regenerate every figure of the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `hpage-types` | addresses, page sizes, configs |
//! | [`faults`] | `hpage-faults` | deterministic fault plans and injection |
//! | [`cache`] | `hpage-cache` | optional physically-indexed data-cache hierarchy |
//! | [`trace`] | `hpage-trace` | graphs, kernels, synthetic workloads, reuse analysis |
//! | [`tlb`] | `hpage-tlb` | TLBs, page tables, hardware walker |
//! | [`pcc`] | `hpage-pcc` | **the promotion candidate cache** |
//! | [`os`] | `hpage-os` | physical memory, address spaces, policies |
//! | [`perf`] | `hpage-perf` | timing model, utility curves |
//! | [`sim`] | `hpage-sim` | end-to-end simulation + figure drivers |
//!
//! # Quickstart
//!
//! ```
//! use hpage::sim::{PolicyChoice, ProcessSpec, Simulation};
//! use hpage::trace::{instantiate, AppId, Dataset, WorkloadScale};
//! use hpage::types::SystemConfig;
//!
//! // A BFS over a power-law graph — the paper's flagship workload.
//! let bfs = instantiate(AppId::Bfs, Dataset::Kronecker, WorkloadScale::TEST, 42);
//!
//! // Simulate it with the PCC recommending promotions to the OS.
//! let report = Simulation::new(SystemConfig::tiny(), PolicyChoice::pcc_default())
//!     .run(&[ProcessSpec::new(&bfs)]);
//! assert!(report.aggregate.accesses > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpage_cache as cache;
pub use hpage_faults as faults;
pub use hpage_os as os;
pub use hpage_pcc as pcc;
pub use hpage_perf as perf;
pub use hpage_sim as sim;
pub use hpage_telemetry as telemetry;
pub use hpage_tlb as tlb;
pub use hpage_trace as trace;
pub use hpage_types as types;
